"""Shared fixtures: small machines and fast simulation scales."""

from __future__ import annotations

import pytest

from repro.config import CacheGeometry, SimulationScale
from repro.machine.simulator import MachineSimulation, PowerEnvironment
from repro.machine.topology import (
    MachineTopology,
    four_core_server,
    two_core_workstation,
)
from repro.workloads.spec import BENCHMARKS


@pytest.fixture
def tiny_geometry() -> CacheGeometry:
    """A small cache: 16 sets x 8 ways."""
    return CacheGeometry(sets=16, ways=8)


@pytest.fixture
def tiny_scale() -> SimulationScale:
    """Budgets small enough for sub-second simulator runs."""
    return SimulationScale(
        warmup_accesses=2_000,
        measure_accesses=6_000,
        warmup_s=0.002,
        measure_s=0.008,
        hpc_period_s=0.0008,
        timeslice_s=0.0005,
    )


@pytest.fixture
def small_server() -> MachineTopology:
    """4-core server scaled to 64 sets for fast tests."""
    return four_core_server(sets=64)


@pytest.fixture
def small_workstation() -> MachineTopology:
    """2-core workstation scaled to 64 sets."""
    return two_core_workstation(sets=64)


@pytest.fixture
def power_env(small_server) -> PowerEnvironment:
    return PowerEnvironment.for_topology(small_server, seed=3)


@pytest.fixture
def mcf():
    return BENCHMARKS["mcf"]


@pytest.fixture
def gzip():
    return BENCHMARKS["gzip"]


@pytest.fixture
def art():
    return BENCHMARKS["art"]


def run_pair(topology, scale, left, right, seed=1, **kwargs):
    """Convenience: co-run two benchmarks on cores 0 and 1."""
    sim = MachineSimulation(
        topology,
        {0: [BENCHMARKS[left]], 1: [BENCHMARKS[right]]},
        scale=scale,
        seed=seed,
        **kwargs,
    )
    return sim.run_accesses()
