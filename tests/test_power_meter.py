"""Unit tests for the regulator, meter and power traces."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.power.meter import MeterSpec, PowerMeter
from repro.power.regulator import Regulator
from repro.power.sampling import PowerTrace


class TestRegulator:
    def test_papers_conversion_factor(self):
        assert Regulator().watts_per_amp == pytest.approx(10.8)

    def test_roundtrip(self):
        regulator = Regulator()
        current = regulator.line_current(54.0)
        assert current == pytest.approx(5.0)
        assert regulator.reported_power(current) == pytest.approx(54.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Regulator(supply_volts=0)
        with pytest.raises(ConfigurationError):
            Regulator(efficiency=1.2)
        with pytest.raises(ConfigurationError):
            Regulator().line_current(-1.0)


class TestMeterSpec:
    def test_defaults_valid(self):
        spec = MeterSpec()
        assert spec.sample_rate_hz == 10_000.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MeterSpec(sample_rate_hz=0)
        with pytest.raises(ConfigurationError):
            MeterSpec(clamp_noise_amps=-1)
        with pytest.raises(ConfigurationError):
            MeterSpec(wander_rho=1.0)


class TestPowerMeter:
    def test_unbiased_up_to_gain_error(self):
        meter = PowerMeter(seed=1)
        readings = [meter.measure_window(50.0, 0.01) for _ in range(200)]
        mean = float(np.mean(readings))
        # Within gain error + wander of the truth.
        assert mean == pytest.approx(50.0, rel=0.05)

    def test_noise_present(self):
        meter = PowerMeter(seed=2)
        readings = [meter.measure_window(50.0, 0.002) for _ in range(50)]
        assert float(np.std(readings)) > 0.1

    def test_longer_windows_average_white_noise(self):
        quiet_spec = MeterSpec(wander_fraction=0.0, clamp_gain_error=0.0)
        short = PowerMeter(quiet_spec, seed=3)
        long = PowerMeter(quiet_spec, seed=3)
        short_readings = [short.measure_window(50.0, 0.0005) for _ in range(80)]
        long_readings = [long.measure_window(50.0, 0.05) for _ in range(80)]
        assert np.std(long_readings) < np.std(short_readings)

    def test_deterministic_given_seed(self):
        a = PowerMeter(seed=9).measure_window(42.0, 0.01)
        b = PowerMeter(seed=9).measure_window(42.0, 0.01)
        assert a == b

    def test_measure_trace(self):
        meter = PowerMeter(seed=4)
        trace = meter.measure_trace(np.array([10.0, 20.0, 30.0]), 0.01)
        assert trace.shape == (3,)
        assert trace[2] > trace[0]

    def test_validation(self):
        meter = PowerMeter()
        with pytest.raises(ConfigurationError):
            meter.measure_window(-1.0, 0.01)
        with pytest.raises(ConfigurationError):
            meter.measure_window(1.0, 0.0)


class TestPowerTrace:
    def test_append_and_means(self):
        trace = PowerTrace(window_s=0.01)
        trace.append(10.0, 11.0)
        trace.append(20.0, 19.0)
        assert len(trace) == 2
        assert trace.mean_true == pytest.approx(15.0)
        assert trace.mean_measured == pytest.approx(15.0)

    def test_times_are_window_centres(self):
        trace = PowerTrace(window_s=0.01, start_s=1.0)
        trace.append(1.0, 1.0)
        trace.append(1.0, 1.0)
        assert trace.times[0] == pytest.approx(1.005)
        assert trace.times[1] == pytest.approx(1.015)

    def test_empty_trace_mean_raises(self):
        with pytest.raises(ConfigurationError):
            PowerTrace(window_s=0.01).mean_measured

    def test_as_arrays(self):
        trace = PowerTrace(window_s=0.01)
        trace.append(5.0, 6.0)
        times, true, measured = trace.as_arrays()
        assert times.shape == true.shape == measured.shape == (1,)
