"""Unit tests for feature and profile vectors."""

import pytest

from repro.core.feature import FeatureVector, ProfileVector
from repro.core.histogram import ReuseDistanceHistogram
from repro.core.spi import SpiModel
from repro.errors import ConfigurationError
from repro.workloads.spec import BENCHMARKS


class TestFeatureVector:
    def test_oracle_matches_benchmark(self):
        benchmark = BENCHMARKS["mcf"]
        frequency = 2e8
        feature = FeatureVector.oracle(benchmark, frequency)
        alpha, beta = benchmark.alpha_beta(frequency)
        assert feature.alpha == pytest.approx(alpha)
        assert feature.beta == pytest.approx(beta)
        assert feature.api == benchmark.api
        assert feature.histogram.close_to(benchmark.intrinsic_histogram())

    def test_occupancy_model_uses_ways(self):
        feature = FeatureVector.oracle(BENCHMARKS["gzip"], 2e8)
        model = feature.occupancy_model(max_ways=8)
        assert model.max_ways == 8

    def test_rejects_bad_api(self):
        hist = ReuseDistanceHistogram([1.0])
        with pytest.raises(ConfigurationError):
            FeatureVector(
                name="x", histogram=hist, api=0.0, spi_model=SpiModel(1e-8, 1e-9)
            )


class TestProfileVector:
    def test_valid_roundtrip(self):
        profile = ProfileVector(
            name="mcf", p_alone=25.0, l1rpi=0.4, l2rpi=0.05, brpi=0.2, fppi=0.0
        )
        assert profile.p_alone == 25.0

    @pytest.mark.parametrize(
        "field,value",
        [
            ("p_alone", -1.0),
            ("l1rpi", -0.1),
            ("l2rpi", -0.1),
            ("brpi", -0.1),
            ("fppi", -0.1),
        ],
    )
    def test_rejects_negative_fields(self, field, value):
        kwargs = dict(
            name="x", p_alone=10.0, l1rpi=0.4, l2rpi=0.05, brpi=0.2, fppi=0.1
        )
        kwargs[field] = value
        with pytest.raises(ConfigurationError):
            ProfileVector(**kwargs)
