"""Unit tests for the Eq. 9 MVLR power model."""

import numpy as np
import pytest

from repro.core.power_model import CorePowerModel, PowerTrainingSet, rate_vector
from repro.errors import ConfigurationError, ModelNotFittedError
from repro.machine.events import Event, RATE_EVENTS

TRUE = {
    "idle": 11.0,
    Event.L1_REFS: 9e-8,
    Event.L2_REFS: 1.5e-7,
    Event.L2_MISSES: -6e-7,
    Event.BRANCHES: 8e-8,
    Event.FP_OPS: 9e-8,
}


def linear_power(rates):
    return TRUE["idle"] + sum(TRUE[event] * rates.get(event, 0.0) for event in RATE_EVENTS)


@pytest.fixture
def training():
    rng = np.random.default_rng(0)
    training = PowerTrainingSet()
    for _ in range(80):
        rates = {
            Event.L1_REFS: rng.uniform(0, 1e8),
            Event.L2_REFS: rng.uniform(0, 2e7),
            Event.L2_MISSES: rng.uniform(0, 8e6),
            Event.BRANCHES: rng.uniform(0, 5e7),
            Event.FP_OPS: rng.uniform(0, 6e7),
        }
        training.add(rates, linear_power(rates))
    return training


class TestTrainingSet:
    def test_rate_vector_ordering(self):
        rates = {event: float(i) for i, event in enumerate(RATE_EVENTS)}
        assert rate_vector(rates) == (0.0, 1.0, 2.0, 3.0, 4.0)

    def test_add_uniform_run_splits_power(self):
        training = PowerTrainingSet()
        rates = {event: 1.0 for event in RATE_EVENTS}
        training.add_uniform_run([rates, rates], processor_power_watts=30.0)
        assert len(training) == 2
        assert training.targets == [15.0, 15.0]

    def test_rejects_negative_power(self):
        training = PowerTrainingSet()
        with pytest.raises(ConfigurationError):
            training.add({}, -1.0)

    def test_rejects_empty_uniform_run(self):
        with pytest.raises(ConfigurationError):
            PowerTrainingSet().add_uniform_run([], 10.0)


class TestFit:
    def test_recovers_linear_truth(self, training):
        model = CorePowerModel().fit(training)
        coefficients = model.coefficients
        assert model.p_idle == pytest.approx(TRUE["idle"], rel=1e-6)
        assert coefficients["L1RPS"] == pytest.approx(TRUE[Event.L1_REFS], rel=1e-6)
        assert coefficients["L2MPS"] == pytest.approx(TRUE[Event.L2_MISSES], rel=1e-6)
        assert model.r_squared == pytest.approx(1.0)

    def test_negative_l2mps_coefficient_learned(self, training):
        """The paper's observation: c3 is negative (stalls burn less)."""
        model = CorePowerModel().fit(training)
        assert model.coefficients["L2MPS"] < 0

    def test_fixed_idle_anchor(self, training):
        model = CorePowerModel().fit(training, idle_core_watts=11.0)
        assert model.p_idle == 11.0

    def test_accuracy_metric(self, training):
        model = CorePowerModel().fit(training)
        assert model.accuracy(training) == pytest.approx(1.0)

    def test_too_few_rows(self):
        training = PowerTrainingSet()
        for _ in range(5):
            training.add({event: 1.0 for event in RATE_EVENTS}, 10.0)
        with pytest.raises(ConfigurationError):
            CorePowerModel().fit(training)


class TestPredict:
    def test_unfitted_raises(self):
        with pytest.raises(ModelNotFittedError):
            CorePowerModel().core_power({})

    def test_core_power(self, training):
        model = CorePowerModel().fit(training)
        rates = {event: 1e6 for event in RATE_EVENTS}
        assert model.core_power(rates) == pytest.approx(linear_power(rates), rel=1e-6)

    def test_idle_core_power_is_intercept(self, training):
        model = CorePowerModel().fit(training)
        assert model.idle_core_power() == pytest.approx(model.p_idle)

    def test_processor_power_sums_cores(self, training):
        model = CorePowerModel().fit(training)
        rates = {event: 1e6 for event in RATE_EVENTS}
        zero = {event: 0.0 for event in RATE_EVENTS}
        total = model.processor_power([rates, zero])
        assert total == pytest.approx(model.core_power(rates) + model.p_idle)

    def test_processor_power_padded(self, training):
        model = CorePowerModel().fit(training)
        rates = {event: 1e6 for event in RATE_EVENTS}
        padded = model.processor_power_padded([rates], total_cores=4)
        assert padded == pytest.approx(model.core_power(rates) + 3 * model.p_idle)

    def test_padding_validation(self, training):
        model = CorePowerModel().fit(training)
        with pytest.raises(ConfigurationError):
            model.processor_power_padded([{}, {}], total_cores=1)
