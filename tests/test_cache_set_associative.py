"""Unit tests for the set-associative cache simulator."""

import pytest

from repro.cache.replacement import FifoPolicy
from repro.cache.set_associative import SetAssociativeCache
from repro.config import CacheGeometry


@pytest.fixture
def cache():
    return SetAssociativeCache(CacheGeometry(sets=4, ways=2))


class TestBasicBehaviour:
    def test_first_access_misses(self, cache):
        assert cache.access(0) is False

    def test_second_access_hits(self, cache):
        cache.access(0)
        assert cache.access(0) is True

    def test_distinct_sets_do_not_conflict(self, cache):
        # Lines 0..3 map to sets 0..3.
        for line in range(4):
            cache.access(line)
        for line in range(4):
            assert cache.access(line) is True

    def test_lru_eviction_within_set(self, cache):
        # Three lines in set 0 of a 2-way cache: first one evicted.
        cache.access(0)
        cache.access(4)
        cache.access(8)  # evicts line 0
        assert cache.access(0) is False

    def test_hit_refreshes_lru(self, cache):
        cache.access(0)
        cache.access(4)
        cache.access(0)  # refresh
        cache.access(8)  # evicts 4, not 0
        assert cache.access(0) is True
        assert cache.contains(4) is False


class TestStatsAndOccupancy:
    def test_per_owner_stats(self, cache):
        cache.access(0, owner=1)
        cache.access(0, owner=1)
        cache.access(1, owner=2)
        assert cache.stats.owner(1).accesses == 2
        assert cache.stats.owner(1).hits == 1
        assert cache.stats.owner(2).misses == 1

    def test_occupancy_by_owner(self, cache):
        for line in range(4):
            cache.access(line, owner=5)
        assert cache.resident_lines(5) == 4
        assert cache.occupancy_ways(5) == pytest.approx(1.0)

    def test_eviction_counters(self, cache):
        cache.access(0, owner=1)
        cache.access(4, owner=2)
        cache.access(8, owner=2)  # evicts owner 1's line
        assert cache.stats.owner(1).evictions_suffered == 1
        assert cache.stats.owner(2).evictions_inflicted == 1

    def test_occupancy_conserved_when_full(self, cache):
        for line in range(100):
            cache.access(line, owner=line % 3)
        assert cache.resident_lines() == cache.geometry.lines

    def test_miss_rate_aggregate(self, cache):
        for line in range(8):
            cache.access(line)
        for line in range(8):
            cache.access(line)
        assert cache.stats.miss_rate == pytest.approx(0.5)


class TestInvalidateAndFlush:
    def test_invalidate_resident(self, cache):
        cache.access(0, owner=1)
        assert cache.invalidate(0) is True
        assert cache.contains(0) is False
        assert cache.resident_lines(1) == 0

    def test_invalidate_absent(self, cache):
        assert cache.invalidate(12345) is False

    def test_invalidated_way_reused_before_eviction(self, cache):
        cache.access(0, owner=1)
        cache.access(4, owner=1)
        cache.invalidate(0)
        cache.access(8, owner=2)  # should use the free way, not evict 4
        assert cache.contains(4) is True

    def test_flush_empties_but_keeps_stats(self, cache):
        cache.access(0)
        cache.access(0)
        cache.flush()
        assert cache.resident_lines() == 0
        assert cache.stats.accesses == 2
        assert cache.access(0) is False  # cold again


class TestAlternatePolicies:
    def test_fifo_policy_plugs_in(self):
        cache = SetAssociativeCache(CacheGeometry(sets=1, ways=2), FifoPolicy())
        cache.access(0)
        cache.access(1)
        cache.access(0)  # hit, but FIFO ignores it
        cache.access(2)  # evicts 0 (first in), not 1
        assert cache.contains(0) is False
        assert cache.contains(1) is True

    def test_set_contents(self, cache):
        cache.access(0, owner=3)
        contents = cache.set_contents(0)
        assert contents == [(0, 3)]
