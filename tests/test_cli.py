"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import _parse_assignment, build_parser, main


class TestParsing:
    def test_parse_assignment(self):
        parsed = _parse_assignment(["0=mcf", "1=gzip,art"])
        assert parsed == {0: ("mcf",), 1: ("gzip", "art")}

    def test_parse_assignment_rejects_bad_fragment(self):
        with pytest.raises(ValueError):
            _parse_assignment(["0"])

    def test_parse_assignment_rejects_unknown_benchmark(self):
        with pytest.raises(ValueError):
            _parse_assignment(["0=linpack"])

    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["machines"])
        assert args.command == "machines"


class TestListingCommands:
    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "4-core-server" in out
        assert "2-core-workstation" in out

    def test_benchmarks(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out
        assert "equake" in out


class TestRunCommand:
    def test_run_small(self, capsys):
        code = main(["--sets", "32", "run", "--machine", "2-core-workstation",
                     "0=gzip", "1=gzip"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Measured steady state" in out
        assert "gzip" in out

    def test_run_error_path(self, capsys):
        code = main(["run", "--machine", "2-core-workstation", "0=nosuch"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestProfilePredictFlow:
    def test_profile_then_predict(self, tmp_path, capsys):
        suite = tmp_path / "suite.json"
        code = main(
            ["--sets", "32", "profile", "--machine", "2-core-workstation",
             "--out", str(suite), "gzip"]
        )
        assert code == 0
        assert suite.exists()
        data = json.loads(suite.read_text())
        assert data["kind"] == "profile_suite"

        capsys.readouterr()
        code = main(["predict", "--suite", str(suite), "--ways", "4",
                     "gzip", "gzip"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Co-run prediction" in out
