"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import _parse_assignment, build_parser, main
from repro.core.power_model import CorePowerModel, PowerTrainingSet
from repro.events import Event, RATE_EVENTS
from repro.fleet import FleetSpec, MachineGroup
from repro.io import save_power_model


class TestParsing:
    def test_parse_assignment(self):
        parsed = _parse_assignment(["0=mcf", "1=gzip,art"])
        assert parsed == {0: ("mcf",), 1: ("gzip", "art")}

    def test_parse_assignment_rejects_bad_fragment(self):
        with pytest.raises(ValueError):
            _parse_assignment(["0"])

    def test_parse_assignment_rejects_unknown_benchmark(self):
        with pytest.raises(ValueError):
            _parse_assignment(["0=linpack"])

    def test_parse_assignment_rejects_duplicate_core(self):
        with pytest.raises(ValueError, match="core 0 assigned twice"):
            _parse_assignment(["0=mcf", "0=gzip"])

    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["machines"])
        assert args.command == "machines"


class TestListingCommands:
    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "4-core-server" in out
        assert "2-core-workstation" in out

    def test_machines_json(self, capsys):
        assert main(["machines", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        workstation = data["machines"]["2-core-workstation"]
        assert workstation["cores"] == 2
        assert all(
            {"cores", "ways", "sets"} == set(d) for d in workstation["domains"]
        )

    def test_machines_json_schema_has_heterogeneity_fields(self, capsys):
        # Schema pin: every machine document carries the same key set,
        # including the per-core clock scales and the hetero flag.
        assert main(["machines", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        expected = {
            "cores",
            "frequency_hz",
            "core_frequency_scales",
            "heterogeneous",
            "domains",
        }
        for name, machine in data["machines"].items():
            assert set(machine) == expected, name
        homogeneous = data["machines"]["4-core-server"]
        assert homogeneous["heterogeneous"] is False
        assert homogeneous["core_frequency_scales"] == []
        hetero = data["machines"]["hetero-server"]
        assert hetero["heterogeneous"] is True
        assert hetero["core_frequency_scales"] == [1.0, 0.5, 1.0, 0.5]

    def test_benchmarks(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out
        assert "equake" in out


class TestRunCommand:
    def test_run_small(self, capsys):
        code = main(["--sets", "32", "run", "--machine", "2-core-workstation",
                     "0=gzip", "1=gzip"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Measured steady state" in out
        assert "gzip" in out

    def test_run_error_path(self, capsys):
        code = main(["run", "--machine", "2-core-workstation", "0=nosuch"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestProfilePredictFlow:
    def test_profile_then_predict(self, tmp_path, capsys):
        suite = tmp_path / "suite.json"
        code = main(
            ["--sets", "32", "profile", "--machine", "2-core-workstation",
             "--out", str(suite), "gzip"]
        )
        assert code == 0
        assert suite.exists()
        data = json.loads(suite.read_text())
        assert data["kind"] == "profile_suite"

        capsys.readouterr()
        code = main(["predict", "--suite", str(suite), "--ways", "4",
                     "gzip", "gzip"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Co-run prediction" in out

        capsys.readouterr()
        code = main(["predict", "--suite", str(suite), "--ways", "4",
                     "--json", "gzip", "gzip"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kind"] == "mix_prediction"
        names = [p["name"] for p in data["prediction"]["processes"]]
        assert names == ["gzip", "gzip"]


class TestBatchPredictFlow:
    @pytest.fixture(scope="class")
    def suite(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("batch") / "suite.json"
        code = main(
            ["--sets", "32", "profile", "--machine", "2-core-workstation",
             "--out", str(path), "gzip"]
        )
        assert code == 0
        return path

    def test_batch_json_output(self, tmp_path, capsys, suite):
        batch = tmp_path / "mixes.json"
        batch.write_text(json.dumps([["gzip"], ["gzip", "gzip"]]))
        capsys.readouterr()
        code = main(["predict", "--suite", str(suite), "--ways", "4",
                     "--batch", str(batch), "--workers", "2", "--json"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kind"] == "mix_prediction_batch"
        assert len(data["predictions"]) == 2
        names = [p["name"] for p in data["predictions"][1]["prediction"]["processes"]]
        assert names == ["gzip", "gzip"]

    def test_batch_table_output_and_mixes_wrapper(self, tmp_path, capsys, suite):
        batch = tmp_path / "mixes.json"
        batch.write_text(json.dumps({"mixes": [["gzip"], ["gzip", "gzip"]]}))
        capsys.readouterr()
        code = main(["predict", "--suite", str(suite), "--ways", "4",
                     "--batch", str(batch)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Mix" in out
        assert "gzip" in out

    def test_names_and_batch_are_mutually_exclusive(self, tmp_path, capsys, suite):
        batch = tmp_path / "mixes.json"
        batch.write_text(json.dumps([["gzip"]]))
        capsys.readouterr()
        code = main(["predict", "--suite", str(suite), "--ways", "4",
                     "--batch", str(batch), "gzip"])
        assert code == 2
        assert "not both" in capsys.readouterr().err

    def test_neither_names_nor_batch_is_an_error(self, capsys, suite):
        capsys.readouterr()
        code = main(["predict", "--suite", str(suite), "--ways", "4"])
        assert code == 2
        assert "--batch" in capsys.readouterr().err

    def test_malformed_batch_file_rejected(self, tmp_path, capsys, suite):
        batch = tmp_path / "mixes.json"
        batch.write_text(json.dumps({"mixes": "gzip"}))
        capsys.readouterr()
        code = main(["predict", "--suite", str(suite), "--ways", "4",
                     "--batch", str(batch)])
        assert code == 2


@pytest.fixture(scope="module")
def synthetic_power_model():
    """A fitted Eq. 9 model without paying for train-power at the CLI."""
    rng = np.random.default_rng(0)
    training = PowerTrainingSet()
    for _ in range(40):
        rates = {event: rng.uniform(0, 1e8) for event in RATE_EVENTS}
        power = 11.0 + 8e-8 * rates[Event.L1_REFS] + 2e-7 * rates[Event.L2_MISSES]
        training.add(rates, power)
    return CorePowerModel().fit(training, idle_core_watts=11.0)


class TestAssignFlow:
    def test_assign_end_to_end(self, tmp_path, capsys, synthetic_power_model):
        suite = tmp_path / "suite.json"
        model = tmp_path / "power.json"
        save_power_model(synthetic_power_model, model)
        assert main(
            ["--sets", "32", "--quick", "profile",
             "--machine", "2-core-workstation", "--out", str(suite),
             "mcf", "gzip"]
        ) == 0
        capsys.readouterr()
        code = main(
            ["--sets", "32", "assign", "--machine", "2-core-workstation",
             "--suite", str(suite), "--power-model", str(model),
             "mcf", "gzip"]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kind"] == "assignment_pick"
        assert data["strategy"] == "exhaustive"
        placed = sorted(
            name
            for names in data["decision"]["assignment"].values()
            for name in names
        )
        assert placed == ["gzip", "mcf"]
        assert data["decision"]["predicted_watts"] > 0

    def test_assign_fleet_flags_route_to_solver(
        self, tmp_path, capsys, synthetic_power_model
    ):
        suite = tmp_path / "suite.json"
        model = tmp_path / "power.json"
        save_power_model(synthetic_power_model, model)
        assert main(
            ["--sets", "32", "--quick", "profile",
             "--machine", "2-core-workstation", "--out", str(suite),
             "mcf", "gzip"]
        ) == 0
        capsys.readouterr()
        code = main(
            ["--sets", "32", "assign", "--machine", "2-core-workstation",
             "--suite", str(suite), "--power-model", str(model),
             "--solver", "greedy", "--objective", "min-power",
             "mcf", "gzip"]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kind"] == "fleet_assignment"
        assert data["solver"] == "greedy"
        assert data["objective"] == "min-power"
        # A canonical objective alone also routes to the fleet solver.
        code = main(
            ["--sets", "32", "assign", "--machine", "2-core-workstation",
             "--suite", str(suite), "--power-model", str(model),
             "--objective", "throughput-under-watts-budget",
             "--power-budget", "500", "mcf", "gzip"]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kind"] == "fleet_assignment"
        assert data["predicted_watts"] <= 500.0
        # --greedy belongs to the legacy pick; combining it with the
        # fleet path is a clean usage error, not a silent reroute.
        code = main(
            ["--sets", "32", "assign", "--machine", "2-core-workstation",
             "--suite", str(suite), "--power-model", str(model),
             "--solver", "anneal", "--greedy", "mcf", "gzip"]
        )
        assert code == 2
        assert "--solver greedy" in capsys.readouterr().err

    def test_assign_fleet_file_with_hetero_spec(
        self, tmp_path, capsys, synthetic_power_model
    ):
        from repro.hetero import big_little_spec
        from repro.io import fleet_spec_to_dict

        suite = tmp_path / "suite.json"
        model = tmp_path / "power.json"
        fleet_file = tmp_path / "fleet.json"
        save_power_model(synthetic_power_model, model)
        assert main(
            ["--sets", "32", "--quick", "profile",
             "--machine", "2-core-workstation", "--out", str(suite),
             "mcf", "gzip"]
        ) == 0
        fleet = FleetSpec(
            groups=(
                MachineGroup(
                    machine="2-core-workstation",
                    sets=32,
                    hetero=big_little_spec("2-core-workstation"),
                ),
            )
        )
        fleet_file.write_text(json.dumps(fleet_spec_to_dict(fleet)))
        capsys.readouterr()
        code = main(
            ["assign", "--machine", "2-core-workstation",
             "--suite", str(suite), "--power-model", str(model),
             "--fleet", str(fleet_file), "--solver", "exhaustive",
             "--objective", "throughput-under-watts-budget",
             "--power-budget", "500", "mcf", "gzip"]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kind"] == "fleet_assignment"
        assert data["fleet"]["groups"][0]["hetero"]["core_type_of"] == [0, 1]
        busy = [m for m in data["machines"] if m["assignment"]]
        assert busy and all(m["pstates"] is not None for m in busy)


class TestObservabilityFlags:
    def test_trace_and_metrics_files(self, tmp_path, capsys):
        suite = tmp_path / "suite.json"
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        code = main(
            ["--sets", "32", "--quick", "profile",
             "--machine", "2-core-workstation", "--out", str(suite),
             "--trace", str(trace), "--metrics", str(metrics), "gzip"]
        )
        assert code == 0
        capsys.readouterr()

        trace_doc = json.loads(trace.read_text())
        assert trace_doc["kind"] == "trace"
        assert trace_doc["version"] == 1
        span_names = {span["name"] for span in trace_doc["spans"]}
        assert {"profile.suite", "profile.process", "simulate"} <= span_names

        metrics_doc = json.loads(metrics.read_text())
        assert metrics_doc["kind"] == "metrics"
        assert metrics_doc["version"] == 1
        counters = metrics_doc["counters"]
        assert counters["profile.processes"] == 1.0
        assert counters["sim.instructions"] > 0

    def test_files_written_even_on_failure(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        code = main(
            ["run", "--machine", "2-core-workstation",
             "--metrics", str(metrics), "0=nosuch"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err
        assert json.loads(metrics.read_text())["kind"] == "metrics"
