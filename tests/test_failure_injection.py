"""Failure-injection and edge-case tests across the stack.

Each test feeds a component degenerate or adversarial input and checks
it fails loudly (the library's contract: errors never pass silently).
"""


import numpy as np
import pytest

from repro.core.equilibrium import BisectionSolver, EquilibriumProcess, NewtonSolver
from repro.core.histogram import ReuseDistanceHistogram
from repro.core.mpa import MissRatioCurve
from repro.core.occupancy import OccupancyModel
from repro.core.spi import fit_spi_model
from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    ProfilingError,
    SimulationError,
)


class TestProfilingFailures:
    def test_noisy_non_monotone_sweep_is_clamped(self):
        """Raw measurement noise must not produce negative buckets."""
        sizes = list(range(1, 9))
        mpas = [0.8, 0.82, 0.6, 0.63, 0.4, 0.38, 0.2, 0.22]  # zig-zag
        curve = MissRatioCurve(sizes, mpas, enforce_monotone=True)
        hist = curve.to_histogram()
        assert np.all(hist.probs >= 0)
        assert float(hist.probs.sum()) + hist.inf_mass == pytest.approx(1.0)

    def test_flat_zero_sweep_unusable_for_alpha(self):
        """An all-zero MPA sweep means alpha is unidentifiable."""
        model = fit_spi_model([0.0, 0.0, 0.0], [1e-9, 1e-9, 1e-9])
        assert model.alpha == 0.0  # degrades gracefully to miss-insensitive

    def test_decreasing_spi_with_mpa_rejected(self):
        with pytest.raises(ProfilingError):
            fit_spi_model([0.1, 0.5, 0.9], [3e-9, 2e-9, 1e-9])

    def test_single_way_machine_cannot_sweep(self):
        from repro.config import TEST_SCALE
        from repro.machine.topology import CacheDomain, MachineTopology
        from repro.config import CacheGeometry
        from repro.profiling.profiler import profile_process
        from repro.workloads.spec import BENCHMARKS

        tiny = MachineTopology(
            name="tiny",
            frequency_hz=2e8,
            domains=(
                CacheDomain(core_ids=(0, 1), geometry=CacheGeometry(sets=16, ways=1)),
            ),
            nominal_power_watts=10,
        )
        with pytest.raises(ProfilingError):
            profile_process(BENCHMARKS["gzip"], tiny, scale=TEST_SCALE)


class TestSolverFailures:
    def test_newton_reports_convergence_error_fields(self):
        # Two *different* processes: the symmetric initial guess is not
        # the solution, so a one-iteration budget cannot converge.
        hist_a = ReuseDistanceHistogram([0.2] * 4, 0.2)
        hist_b = ReuseDistanceHistogram([0.05] * 12, 0.4)
        processes = [
            EquilibriumProcess(
                occupancy=OccupancyModel(hist_a, max_ways=8),
                mpa=hist_a.mpa,
                api=0.01,
                alpha=8e-9,
                beta=3e-9,
            ),
            EquilibriumProcess(
                occupancy=OccupancyModel(hist_b, max_ways=8),
                mpa=hist_b.mpa,
                api=0.08,
                alpha=6e-8,
                beta=2e-9,
            ),
        ]
        solver = NewtonSolver(max_iterations=1, tol=1e-30)
        with pytest.raises(ConvergenceError) as exc_info:
            solver.solve(processes, 8)
        assert exc_info.value.iterations >= 1

    def test_bisection_handles_extreme_rate_imbalance(self):
        """One process 10^6x faster than the other must still solve."""
        hungry = ReuseDistanceHistogram([0.05] * 10, 0.5)
        processes = [
            EquilibriumProcess(
                occupancy=OccupancyModel(hungry, max_ways=8),
                mpa=hungry.mpa,
                api=0.1,
                alpha=1e-12,
                beta=1e-12,
            ),
            EquilibriumProcess(
                occupancy=OccupancyModel(hungry, max_ways=8),
                mpa=hungry.mpa,
                api=0.001,
                alpha=1e-6,
                beta=1e-6,
            ),
        ]
        result = BisectionSolver().solve(processes, 8)
        assert result.total_size == pytest.approx(8.0, abs=0.05)
        # The fast process dominates the cache.
        assert result.sizes[0] > result.sizes[1]


class TestSimulatorEdgeCases:
    def test_zero_process_access_mode_fails(self, small_server, tiny_scale):
        from repro.machine.simulator import MachineSimulation

        with pytest.raises(SimulationError):
            MachineSimulation(small_server, {}, scale=tiny_scale).run_accesses()

    def test_max_processes_per_domain(self, small_server, tiny_scale):
        """Eight processes time-sharing two cores still runs."""
        from repro.machine.simulator import MachineSimulation
        from repro.workloads.spec import BENCHMARKS

        names = ["gzip", "mcf", "art", "twolf"]
        sim = MachineSimulation(
            small_server,
            {
                0: [BENCHMARKS[n] for n in names],
                1: [BENCHMARKS[n] for n in names],
            },
            scale=tiny_scale,
            seed=3,
        )
        result = sim.run_accesses(warmup_accesses=500, measure_accesses=1_500)
        assert len(result.processes) == 8
        assert all(p.l2_refs >= 1_500 for p in result.processes)
        assert result.context_switches > 10

    def test_negative_prefetch_cost_rejected(self, small_server, tiny_scale):
        from repro.machine.simulator import MachineSimulation
        from repro.workloads.spec import BENCHMARKS

        with pytest.raises(ConfigurationError):
            MachineSimulation(
                small_server,
                {0: [BENCHMARKS["gzip"]]},
                scale=tiny_scale,
                prefetch="stride",
                prefetch_cost_fraction=-0.5,
            )


class TestMeterEdgeCases:
    def test_zero_power_window(self):
        from repro.power.meter import PowerMeter

        meter = PowerMeter(seed=1)
        reading = meter.measure_window(0.0, 0.01)
        assert reading >= 0.0  # clamped, never negative

    def test_tiny_window_still_has_one_sample(self):
        from repro.power.meter import PowerMeter

        meter = PowerMeter(seed=2)
        reading = meter.measure_window(50.0, 1e-6)
        assert reading > 0.0


class TestHistogramEdgeCases:
    def test_all_inf_histogram_equilibrium(self):
        """A pure-streaming process: MPA 1 everywhere, still solvable."""
        from repro.core.equilibrium import solve_equilibrium

        hist = ReuseDistanceHistogram([0.0], inf_mass=1.0)
        process = EquilibriumProcess(
            occupancy=OccupancyModel(hist, max_ways=8),
            mpa=hist.mpa,
            api=0.05,
            alpha=5e-8,
            beta=2e-9,
        )
        result = solve_equilibrium([process, process], 8)
        assert result.total_size == pytest.approx(8.0, abs=0.05)
        assert all(m == pytest.approx(1.0) for m in result.mpas)

    def test_point_mass_at_zero(self):
        """Perfect temporal locality: one line hit forever."""
        hist = ReuseDistanceHistogram.point_mass(0)
        model = OccupancyModel(hist, max_ways=8)
        assert model.saturation_size == pytest.approx(1.0)
        assert hist.mpa(1) == pytest.approx(0.0)
