"""Property-based tests for the occupancy model and equilibrium solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.equilibrium import EquilibriumProcess, solve_equilibrium
from repro.core.histogram import ReuseDistanceHistogram
from repro.core.occupancy import OccupancyModel

WAYS = 12


@st.composite
def equilibrium_processes(draw):
    """Random but physically sensible process inputs."""
    size = draw(st.integers(min_value=1, max_value=20))
    weights = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=1.0),
            min_size=size,
            max_size=size,
        )
    )
    inf_mass = draw(st.floats(min_value=0.01, max_value=1.0))
    hist = ReuseDistanceHistogram(weights, inf_mass)
    api = draw(st.floats(min_value=0.005, max_value=0.1))
    penalty = draw(st.floats(min_value=50.0, max_value=300.0))
    base = draw(st.floats(min_value=0.3, max_value=1.5))
    frequency = 2e8
    return EquilibriumProcess(
        occupancy=OccupancyModel(hist, max_ways=WAYS),
        mpa=hist.mpa,
        api=api,
        alpha=api * penalty / frequency,
        beta=base / frequency,
    )


class TestOccupancyProperties:
    @given(equilibrium_processes())
    @settings(max_examples=30, deadline=None)
    def test_growth_monotone_bounded(self, process):
        model = process.occupancy
        values = [model.g(n) for n in np.linspace(0, 500, 50)]
        assert all(0.0 <= v <= WAYS + 1e-9 for v in values)
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    @given(equilibrium_processes(), st.floats(min_value=1.0, max_value=400.0))
    @settings(max_examples=40, deadline=None)
    def test_inverse_consistency(self, process, n):
        model = process.occupancy
        size = model.g(n)
        if size < model.saturation_size - 1e-3:
            recovered = model.g_inverse(size)
            assert recovered == pytest.approx(n, rel=0.05, abs=0.5)


class TestEquilibriumProperties:
    @given(st.lists(equilibrium_processes(), min_size=2, max_size=4))
    @settings(max_examples=20, deadline=None)
    def test_solution_feasible(self, processes):
        result = solve_equilibrium(processes, WAYS, strategy="auto")
        assert all(0.0 <= s <= WAYS + 1e-6 for s in result.sizes)
        assert result.total_size <= WAYS + 1e-3
        if result.contended:
            assert result.total_size == pytest.approx(WAYS, abs=0.05)

    @given(st.lists(equilibrium_processes(), min_size=2, max_size=3))
    @settings(max_examples=20, deadline=None)
    def test_outputs_self_consistent(self, processes):
        result = solve_equilibrium(processes, WAYS, strategy="auto")
        for process, size, mpa, spi in zip(
            processes, result.sizes, result.mpas, result.spis
        ):
            assert mpa == pytest.approx(process.mpa(size), abs=1e-6)
            assert spi == pytest.approx(process.alpha * mpa + process.beta, rel=1e-9)

    @given(equilibrium_processes())
    @settings(max_examples=20, deadline=None)
    def test_self_pair_symmetric(self, process):
        result = solve_equilibrium([process, process], WAYS, strategy="auto")
        assert result.sizes[0] == pytest.approx(result.sizes[1], abs=0.1)
