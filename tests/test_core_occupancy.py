"""Unit tests for the occupancy growth model (Eqs. 4-5)."""

import numpy as np
import pytest

from repro.core.histogram import ReuseDistanceHistogram
from repro.core.occupancy import OccupancyModel
from repro.errors import ConfigurationError


@pytest.fixture
def streaming_model():
    """Pure streaming: every access misses, growth is one way/access."""
    hist = ReuseDistanceHistogram([0.0], inf_mass=1.0)
    return OccupancyModel(hist, max_ways=8)


@pytest.fixture
def mixed_model():
    hist = ReuseDistanceHistogram([0.4, 0.3, 0.2], inf_mass=0.1)
    return OccupancyModel(hist, max_ways=8)


class TestGrowth:
    def test_first_access_occupies_one_way(self, mixed_model):
        assert mixed_model.g(1) == pytest.approx(1.0)

    def test_g_zero_is_zero(self, mixed_model):
        assert mixed_model.g(0) == 0.0

    def test_streaming_grows_one_per_access(self, streaming_model):
        for n in range(1, 9):
            assert streaming_model.g(n) == pytest.approx(float(n))

    def test_streaming_saturates_at_ways(self, streaming_model):
        assert streaming_model.g(100) == pytest.approx(8.0)
        assert streaming_model.saturation_size == pytest.approx(8.0)

    def test_monotone_non_decreasing(self, mixed_model):
        values = [mixed_model.g(n) for n in np.linspace(0, 200, 80)]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_finite_footprint_saturates_below_ways(self):
        """A process reusing only 2 lines never occupies more than 2."""
        hist = ReuseDistanceHistogram([0.5, 0.5])  # distances 0 and 1
        model = OccupancyModel(hist, max_ways=8)
        assert model.saturation_size == pytest.approx(2.0, abs=1e-6)

    def test_expected_growth_matches_monte_carlo(self):
        """Eq. 4 vs direct simulation of the miss/grow chain."""
        hist = ReuseDistanceHistogram([0.3, 0.3, 0.2], inf_mass=0.2)
        model = OccupancyModel(hist, max_ways=6)
        rng = np.random.default_rng(0)
        trials = 4000
        steps = 25
        sizes = np.ones(trials)
        totals = np.zeros(steps)
        totals[0] = 1.0
        for n in range(1, steps):
            mpa = np.array([hist.mpa(s) for s in sizes])
            grow = rng.random(trials) < mpa
            sizes = np.minimum(sizes + grow, 6)
            totals[n] = sizes.mean()
        for n in range(steps):
            assert model.g(n + 1) == pytest.approx(totals[n], abs=0.05)

    def test_fractional_interpolation(self, streaming_model):
        assert streaming_model.g(1.5) == pytest.approx(1.5)


class TestInverse:
    def test_inverse_of_growth(self, mixed_model):
        for n in (1.0, 3.0, 10.0, 40.0):
            size = mixed_model.g(n)
            if size < mixed_model.saturation_size - 1e-6:
                assert mixed_model.g_inverse(size) == pytest.approx(n, rel=0.02)

    def test_inverse_at_zero(self, mixed_model):
        assert mixed_model.g_inverse(0.0) == 0.0

    def test_inverse_beyond_saturation_is_inf(self, mixed_model):
        assert mixed_model.g_inverse(mixed_model.saturation_size) == float("inf")
        assert mixed_model.g_inverse(100.0) == float("inf")

    def test_inverse_monotone(self, mixed_model):
        sizes = np.linspace(0.1, mixed_model.saturation_size - 0.05, 30)
        values = [mixed_model.g_inverse(s) for s in sizes]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    def test_inverse_rejects_negative(self, mixed_model):
        with pytest.raises(ConfigurationError):
            mixed_model.g_inverse(-1.0)


class TestValidation:
    def test_rejects_bad_ways(self):
        hist = ReuseDistanceHistogram([1.0])
        with pytest.raises(ConfigurationError):
            OccupancyModel(hist, max_ways=0)

    def test_table_length_bounded(self):
        hist = ReuseDistanceHistogram([0.0], inf_mass=1.0)
        model = OccupancyModel(hist, max_ways=4, max_accesses=100)
        assert model.table_length <= 100

    def test_mpa_at_passthrough(self, mixed_model):
        assert mixed_model.mpa_at(1) == pytest.approx(
            mixed_model.histogram.mpa(1)
        )
