"""Unit tests for the hidden reference power model."""

import pytest

from repro.errors import ConfigurationError
from repro.machine.events import Event, RATE_EVENTS
from repro.power.reference import ComponentResponse, ReferencePowerModel, reference_for

FREQ = 2e8


@pytest.fixture
def reference():
    return reference_for(nominal_watts=105.0, cores=4, frequency_hz=FREQ)


#: Physically plausible peak rates per event (fractions of the clock):
#: misses are a small share of references, which filter through L1.
_PEAKS = {
    Event.L1_REFS: 0.5,
    Event.L2_REFS: 0.05,
    Event.L2_MISSES: 0.01,
    Event.BRANCHES: 0.2,
    Event.FP_OPS: 0.3,
}


def rates(fraction: float):
    return {event: fraction * _PEAKS[event] * FREQ for event in RATE_EVENTS}


class TestComponentResponse:
    def test_linear_at_low_rates(self):
        response = ComponentResponse(peak=10.0, sat_rate=1e8)
        slope = response.watts(1e5) / 1e5
        assert slope == pytest.approx(10.0 / 1e8, rel=0.01)

    def test_saturates_at_peak(self):
        response = ComponentResponse(peak=10.0, sat_rate=1e6)
        assert response.watts(1e12) == pytest.approx(10.0, rel=0.01)

    def test_negative_peak_bounded(self):
        response = ComponentResponse(peak=-5.0, sat_rate=1e6)
        assert response.watts(1e12) == pytest.approx(-5.0, rel=0.01)
        assert response.watts(0.0) == 0.0

    def test_rejects_bad_saturation(self):
        with pytest.raises(ConfigurationError):
            ComponentResponse(peak=1.0, sat_rate=0.0)

    def test_rejects_negative_rate(self):
        with pytest.raises(ConfigurationError):
            ComponentResponse(peak=1.0, sat_rate=1e6).watts(-1.0)


class TestReferenceModel:
    def test_idle_power(self, reference):
        assert reference.core_power({}) == pytest.approx(reference.core_idle_watts)
        idle4 = reference.idle_processor_power(4)
        assert idle4 == pytest.approx(
            reference.uncore_watts + 4 * reference.core_idle_watts
        )

    def test_idle_fraction_plausible(self, reference):
        idle = reference.idle_processor_power(4)
        assert 0.25 * 105 < idle < 0.6 * 105

    def test_activity_increases_power(self, reference):
        low = reference.core_power(rates(0.1))
        high = reference.core_power(rates(0.8))
        assert high > low > reference.core_idle_watts

    def test_l2_miss_rate_reduces_power(self, reference):
        """Stalled pipelines burn less: the paper's negative c3."""
        base = rates(0.5)
        base[Event.L2_MISSES] = 0.0
        stalled = dict(base)
        stalled[Event.L2_MISSES] = 0.02 * FREQ
        assert reference.core_power(stalled) < reference.core_power(base)

    def test_processor_power_sums_cores(self, reference):
        one = reference.core_power(rates(0.5))
        total = reference.processor_power([rates(0.5)] * 4)
        assert total == pytest.approx(reference.uncore_watts + 4 * one)

    def test_concavity(self, reference):
        """Responses saturate: the marginal watt shrinks with rate."""
        p0 = reference.core_power(rates(0.2))
        p1 = reference.core_power(rates(0.4))
        p2 = reference.core_power(rates(0.6))
        assert (p1 - p0) > (p2 - p1)

    def test_distinct_machines_distinct_coefficients(self):
        a = reference_for(105.0, 4, FREQ)
        b = reference_for(65.0, 2, FREQ)
        assert a.core_idle_watts != b.core_idle_watts
        assert (
            a.responses[Event.L1_REFS].peak != b.responses[Event.L1_REFS].peak
        )

    def test_missing_response_rejected(self):
        with pytest.raises(ConfigurationError):
            ReferencePowerModel(
                uncore_watts=10.0,
                core_idle_watts=5.0,
                responses={},
                interaction_watts=0.0,
                frequency_hz=FREQ,
            )

    def test_factory_validation(self):
        with pytest.raises(ConfigurationError):
            reference_for(0.0, 4, FREQ)
        with pytest.raises(ConfigurationError):
            reference_for(100.0, 0, FREQ)
