"""Unit tests for the repro.obs tracing + metrics subsystem."""

import json

import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.obs import (
    METRICS_FORMAT_VERSION,
    NULL_OBSERVER,
    Observer,
    TRACE_FORMAT_VERSION,
    get_observer,
    set_observer,
    use_observer,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_SPAN, Tracer


class TestSpans:
    def test_span_records_timing_and_status(self):
        tracer = Tracer()
        with tracer.span("work", key="value") as span:
            sum(range(1000))
        assert span.status == "ok"
        assert span.wall_s >= 0.0
        assert span.cpu_s >= 0.0
        assert span.attributes == {"key": "value"}
        assert tracer.finished == [span]

    def test_nesting_links_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # Children finish (and are recorded) before their parents.
        assert [s.name for s in tracer.finished] == ["inner", "outer"]

    def test_error_marks_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed") as span:
                raise RuntimeError("boom")
        assert span.status == "error"
        assert span.attributes["error"] == "RuntimeError"

    def test_annotate_merges_attributes(self):
        tracer = Tracer()
        with tracer.span("s", a=1) as span:
            span.annotate(b=2, a=3)
        assert span.attributes == {"a": 3, "b": 2}

    def test_name_attribute_does_not_collide(self):
        tracer = Tracer()
        with tracer.span("profile", name="mcf") as span:
            pass
        assert span.name == "profile"
        assert span.attributes == {"name": "mcf"}

    def test_clear_resets_ids(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.clear()
        with tracer.span("b") as span:
            pass
        assert span.span_id == 1
        assert [s.name for s in tracer.finished] == ["b"]


class TestMetrics:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.counter("x").inc(2.5)
        assert registry.counter("x").value == 3.5

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.counter("x").inc(-1)

    def test_gauge_holds_last_value(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(1.0)
        registry.gauge("g").set(-7.0)
        assert registry.gauge("g").value == -7.0

    def test_histogram_streams_stats(self):
        registry = MetricsRegistry()
        h = registry.histogram("h")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        snapshot = h.to_dict()
        assert snapshot["count"] == 3
        assert snapshot["min"] == 1.0
        assert snapshot["max"] == 3.0
        assert snapshot["mean"] == pytest.approx(2.0)

    def test_clear_drops_instruments(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.clear()
        assert registry.to_dict()["counters"] == {}


class TestObserverInstallation:
    def test_default_is_disabled(self):
        assert get_observer() is NULL_OBSERVER
        assert not get_observer().enabled

    def test_use_observer_restores_previous(self):
        observer = Observer()
        with use_observer(observer):
            assert get_observer() is observer
            assert get_observer().enabled
        assert get_observer() is NULL_OBSERVER

    def test_set_observer_none_restores_default(self):
        previous = set_observer(Observer())
        try:
            assert get_observer().enabled
        finally:
            set_observer(None)
        assert previous is NULL_OBSERVER
        assert get_observer() is NULL_OBSERVER

    def test_null_observer_hands_out_shared_noops(self):
        assert NULL_OBSERVER.span("x") is NULL_SPAN
        NULL_OBSERVER.counter("c").inc(5)
        NULL_OBSERVER.gauge("g").set(1.0)
        NULL_OBSERVER.histogram("h").observe(2.0)
        assert NULL_OBSERVER.metrics_dict()["counters"] == {}
        assert NULL_OBSERVER.trace_dict()["spans"] == []


class TestExportSchema:
    """Pin the JSON schemas of the trace and metrics documents."""

    def test_trace_document_schema(self):
        observer = Observer()
        with observer.span("outer", tag="t"):
            with observer.span("inner"):
                pass
        doc = observer.trace_dict()
        assert doc["kind"] == "trace"
        assert doc["version"] == TRACE_FORMAT_VERSION == 1
        assert len(doc["spans"]) == 2
        for span in doc["spans"]:
            assert set(span) == {
                "name", "id", "parent_id", "start_s", "wall_s",
                "cpu_s", "status", "attributes",
            }
        json.dumps(doc)  # must be plain JSON

    def test_metrics_document_schema(self):
        observer = Observer()
        observer.counter("c").inc(2)
        observer.gauge("g").set(4.0)
        observer.histogram("h").observe(1.5)
        doc = observer.metrics_dict()
        assert doc["kind"] == "metrics"
        assert doc["version"] == METRICS_FORMAT_VERSION == 1
        assert doc["counters"] == {"c": 2.0}
        assert doc["gauges"] == {"g": 4.0}
        assert set(doc["histograms"]["h"]) == {
            "count", "sum", "min", "max", "mean",
        }
        json.dumps(doc)

    def test_write_exports_are_loadable(self, tmp_path):
        observer = Observer()
        with observer.span("s"):
            observer.counter("c").inc()
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        observer.write_trace(trace_path)
        observer.write_metrics(metrics_path)
        assert json.loads(trace_path.read_text())["kind"] == "trace"
        assert json.loads(metrics_path.read_text())["kind"] == "metrics"


class TestPipelineIntegration:
    """The wired call sites report into an installed observer."""

    def test_predict_emits_spans_and_counters(self):
        from repro.core.feature import FeatureVector
        from repro.core.performance_model import PerformanceModel
        from repro.workloads.spec import BENCHMARKS

        model = PerformanceModel(ways=8)
        model.register_all(
            [
                FeatureVector.oracle(BENCHMARKS[name], 2e8)
                for name in ("mcf", "gzip")
            ]
        )
        observer = Observer()
        with use_observer(observer):
            model.predict(["mcf", "gzip"])
            model.predict(["mcf", "gzip"])  # cache hit
        names = [s.name for s in observer.tracer.finished]
        assert names.count("predict") == 2
        assert "equilibrium.solve" in names
        counters = observer.metrics_dict()["counters"]
        assert counters["predict.calls"] == 2.0
        assert counters["solver_cache.hits"] == 1.0
        assert counters["solver_cache.misses"] == 1.0
        assert counters["equilibrium.solves"] == 1.0
        # The equilibrium span nests under the first predict span.
        spans = {s.span_id: s for s in observer.tracer.finished}
        solve = next(
            s for s in observer.tracer.finished if s.name == "equilibrium.solve"
        )
        assert spans[solve.parent_id].name == "predict"

    def test_disabled_observer_leaves_no_record(self):
        from repro.core.feature import FeatureVector
        from repro.core.performance_model import PerformanceModel
        from repro.workloads.spec import BENCHMARKS

        model = PerformanceModel(ways=8)
        model.register(FeatureVector.oracle(BENCHMARKS["mcf"], 2e8))
        assert get_observer() is NULL_OBSERVER
        model.predict(["mcf"])  # must not raise, must not record
        assert NULL_OBSERVER.trace_dict()["spans"] == []

    def test_module_reexports(self):
        for name in obs.__all__:
            assert hasattr(obs, name)


class TestOutOfOrderClose:
    def test_double_close_marks_error_instead_of_passing_silently(self):
        tracer = Tracer()
        span = tracer.span("leaky")
        span.__enter__()
        span.__exit__(None, None, None)
        assert span.status == "ok"
        # A second close finds the span gone from the stack; the old
        # code swallowed this with a bare ``pass``.
        span.__exit__(None, None, None)
        assert span.status == "error"
        assert span.attributes["error"] == "span closed while not open"

    def test_interleaved_closes_are_tolerated(self):
        """Generator-style exits (outer before inner) stay non-errors."""
        tracer = Tracer()
        outer, inner = tracer.span("outer"), tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        outer.__exit__(None, None, None)
        inner.__exit__(None, None, None)
        assert outer.status == "ok"
        assert inner.status == "ok"
        assert len(tracer.finished) == 2

    def test_anomaly_is_logged(self, caplog):
        import logging

        tracer = Tracer()
        span = tracer.span("leaky")
        span.__enter__()
        span.__exit__(None, None, None)
        with caplog.at_level(logging.DEBUG, logger="repro.obs.trace"):
            span.__exit__(None, None, None)
        assert any("not on the tracer stack" in r.message for r in caplog.records)


class TestTracerAbsorb:
    def _worker_doc(self):
        tracer = Tracer()
        with tracer.span("root", worker=1):
            with tracer.span("child"):
                pass
        return tracer.to_dict()

    def test_ids_remapped_and_links_preserved(self):
        parent = Tracer()
        with parent.span("occupy-ids"):
            pass
        doc = self._worker_doc()
        parent.absorb(doc["spans"])
        by_name = {s.name: s for s in parent.finished}
        ids = [s.span_id for s in parent.finished]
        assert len(set(ids)) == len(ids)  # no collisions with local spans
        assert by_name["child"].parent_id == by_name["root"].span_id
        assert by_name["root"].attributes == {"worker": 1}

    def test_roots_reparented_under_given_span(self):
        parent = Tracer()
        with parent.span("batch") as batch:
            pass
        parent.absorb(self._worker_doc()["spans"], parent_id=batch.span_id)
        by_name = {s.name: s for s in parent.finished}
        assert by_name["root"].parent_id == batch.span_id
        assert by_name["child"].parent_id == by_name["root"].span_id

    def test_timings_and_status_carried_over(self):
        doc = self._worker_doc()
        doc["spans"][0]["status"] = "error"
        parent = Tracer()
        parent.absorb(doc["spans"])
        by_name = {s.name: s for s in parent.finished}
        assert by_name["child"].status == "error"
        assert by_name["child"].wall_s == doc["spans"][0]["wall_s"]


class TestMetricsAbsorb:
    def test_merge_semantics(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(2)
        b.counter("n").inc(3)
        b.counter("only_b").inc(1)
        a.gauge("g").set(1.0)
        b.gauge("g").set(9.0)
        for value in (1.0, 5.0):
            a.histogram("h").observe(value)
        b.histogram("h").observe(-2.0)
        a.absorb(b.to_dict())
        doc = a.to_dict()
        assert doc["counters"] == {"n": 5.0, "only_b": 1.0}
        assert doc["gauges"] == {"g": 9.0}  # absorbed value wins
        assert doc["histograms"]["h"]["count"] == 3
        assert doc["histograms"]["h"]["sum"] == 4.0
        assert doc["histograms"]["h"]["min"] == -2.0
        assert doc["histograms"]["h"]["max"] == 5.0

    def test_empty_histogram_does_not_pollute(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h").observe(3.0)
        b.histogram("h")  # created, never observed
        a.absorb(b.to_dict())
        assert a.to_dict()["histograms"]["h"]["count"] == 1

    def test_observer_absorb_combines_trace_and_metrics(self):
        worker = Observer()
        with worker.span("work"):
            worker.counter("done").inc()
        parent = Observer()
        with parent.span("batch") as batch:
            pass
        parent.absorb(
            trace_document=worker.trace_dict(),
            metrics_document=worker.metrics_dict(),
            parent_span_id=batch.span_id,
        )
        spans = {s.name: s for s in parent.tracer.finished}
        assert spans["work"].parent_id == batch.span_id
        assert parent.metrics_dict()["counters"]["done"] == 1.0


class TestWriterSanitization:
    """Exports must stay loadable even when attributes go non-finite."""

    def test_nan_attribute_survives_as_marker(self, tmp_path):
        observer = Observer()
        with observer.span("solve", residual=float("nan")):
            observer.gauge("residual").set(float("inf"))
        observer.write_trace(tmp_path / "trace.json")
        observer.write_metrics(tmp_path / "metrics.json")
        trace = json.loads((tmp_path / "trace.json").read_text())
        metrics = json.loads((tmp_path / "metrics.json").read_text())
        span = next(s for s in trace["spans"] if s["name"] == "solve")
        assert span["attributes"]["residual"] == "NaN"
        assert metrics["gauges"]["residual"] == "Infinity"

    def test_written_files_are_strict_json(self, tmp_path):
        observer = Observer()
        with observer.span("x", bad=float("-inf")):
            pass
        observer.write_trace(tmp_path / "trace.json")
        json.loads(
            (tmp_path / "trace.json").read_text(),
            parse_constant=lambda token: pytest.fail(
                f"non-strict JSON token {token!r} written"
            ),
        )
