"""Unit tests for the trace generators.

The load-bearing invariant: feeding a generated stream through the
exact per-set reuse-distance profiler recovers the target profile.
"""

import math

import pytest

from repro.cache.reuse import SetReuseProfiler
from repro.errors import ConfigurationError
from repro.workloads.generator import (
    StackDistanceTraceGenerator,
    StressmarkGenerator,
    TAG_SPACE,
    build_generator,
)
from repro.workloads.spec import BENCHMARKS
from repro.workloads.stressmark import make_stressmark

SETS = 16


class TestStackDistanceGenerator:
    def _empirical_histogram(self, profile, n=40_000, **kwargs):
        generator = StackDistanceTraceGenerator(profile, sets=SETS, seed=3, **kwargs)
        profiler = SetReuseProfiler(sets=SETS)
        # Warm up the per-set stacks, then measure.
        for _ in range(n // 4):
            profiler.record(generator.next_line())
        profiler.reset()
        for _ in range(n):
            profiler.record(generator.next_line())
        return profiler.histogram(include_cold=True)

    def test_trace_matches_point_profile(self):
        hist = self._empirical_histogram(((2, 1.0),))
        assert hist.probability(2) > 0.99

    def test_trace_matches_mixed_profile(self):
        profile = ((0, 0.5), (1, 0.3), (4, 0.2))
        hist = self._empirical_histogram(profile)
        for distance, weight in profile:
            assert hist.probability(int(distance)) == pytest.approx(weight, abs=0.03)

    def test_streaming_mass_recovered(self):
        profile = ((0, 0.6), (math.inf, 0.4))
        hist = self._empirical_histogram(profile)
        assert hist.inf_mass == pytest.approx(0.4, abs=0.03)

    def test_sequential_streaming_recovered(self):
        profile = ((0, 0.6), (math.inf, 0.4))
        hist = self._empirical_histogram(profile, streaming_sequential=True)
        assert hist.inf_mass == pytest.approx(0.4, abs=0.03)

    def test_benchmark_profile_roundtrip(self):
        """The mcf definition must reproduce its own histogram."""
        benchmark = BENCHMARKS["mcf"]
        hist = self._empirical_histogram(benchmark.rd_profile, n=60_000)
        target = benchmark.intrinsic_histogram()
        for size in (1, 4, 8, 16, 24):
            assert hist.mpa(size) == pytest.approx(target.mpa(size), abs=0.02)

    def test_deterministic_given_seed(self):
        profile = ((0, 0.5), (2, 0.5))
        a = StackDistanceTraceGenerator(profile, sets=SETS, seed=11)
        b = StackDistanceTraceGenerator(profile, sets=SETS, seed=11)
        assert a.take(500) == b.take(500)

    def test_different_seeds_differ(self):
        profile = ((0, 0.5), (2, 0.5))
        a = StackDistanceTraceGenerator(profile, sets=SETS, seed=1)
        b = StackDistanceTraceGenerator(profile, sets=SETS, seed=2)
        assert a.take(200) != b.take(200)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StackDistanceTraceGenerator((), sets=SETS, seed=0)
        with pytest.raises(ConfigurationError):
            StackDistanceTraceGenerator(((0, 1.0),), sets=3, seed=0)


class TestStressmarkGenerator:
    def test_exact_distance(self):
        ways = 5
        generator = StressmarkGenerator(ways, sets=SETS)
        profiler = SetReuseProfiler(sets=SETS)
        for _ in range(SETS * ways * 10):
            profiler.record(generator.next_line())
        hist = profiler.histogram(include_cold=False)
        assert hist.probability(ways - 1) == pytest.approx(1.0)

    def test_touches_every_set(self):
        generator = StressmarkGenerator(2, sets=SETS)
        sets_touched = {generator.next_line() & (SETS - 1) for _ in range(SETS * 2)}
        assert sets_touched == set(range(SETS))

    def test_footprint_is_ways_per_set(self):
        generator = StressmarkGenerator(3, sets=SETS)
        lines = set(generator.take(SETS * 3 * 4))
        assert len(lines) == SETS * 3


class TestBuildGenerator:
    def test_dispatches_stressmark(self):
        generator = build_generator(make_stressmark(4), sets=SETS, seed=0)
        assert isinstance(generator, StressmarkGenerator)

    def test_dispatches_trace(self):
        generator = build_generator(BENCHMARKS["gzip"], sets=SETS, seed=0)
        assert isinstance(generator, StackDistanceTraceGenerator)

    def test_owner_tag_spaces_disjoint(self):
        a = build_generator(BENCHMARKS["mcf"], sets=SETS, seed=0, owner_index=0)
        b = build_generator(BENCHMARKS["mcf"], sets=SETS, seed=0, owner_index=1)
        lines_a = {line >> 4 for line in a.take(5_000)}
        lines_b = {line >> 4 for line in b.take(5_000)}
        assert not lines_a & lines_b

    def test_tag_space_constant_large(self):
        assert TAG_SPACE >= 1 << 28
