"""Unit and integration tests for the shared equilibrium cache."""

import numpy as np
import pytest

from repro.core.combined import CombinedModel
from repro.core.feature import FeatureVector, ProfileVector
from repro.core.histogram import ReuseDistanceHistogram
from repro.core.performance_model import PerformanceModel
from repro.core.power_model import CorePowerModel, PowerTrainingSet
from repro.core.solver_cache import CacheStats, EquilibriumCache
from repro.core.spi import SpiModel
from repro.errors import ConfigurationError
from repro.events import RATE_EVENTS
from repro.machine.topology import four_core_server

WAYS = 16


class TestEquilibriumCache:
    def test_miss_then_hit(self):
        cache = EquilibriumCache()
        assert cache.get("k") is None
        cache.put("k", 42)
        assert cache.get("k") == 42
        stats = cache.stats
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.hit_rate == pytest.approx(0.5)
        assert "k" in cache
        assert len(cache) == 1

    def test_lru_eviction(self):
        cache = EquilibriumCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a": "b" is now least recently used
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.stats.evictions == 1

    def test_zero_capacity_disables_storage(self):
        cache = EquilibriumCache(max_entries=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0
        assert cache.stats.misses == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            EquilibriumCache(max_entries=-1)

    def test_clear_drops_entries_keeps_counters(self):
        cache = EquilibriumCache()
        cache.put("a", 1)
        cache.get("a")
        cache.record_sizes(["p"], [3.0])
        cache.clear()
        assert len(cache) == 0
        assert cache.suggest_initial(["p"], WAYS) is None
        assert cache.stats.hits == 1  # counters survive a clear

    def test_suggest_initial_rescales_to_capacity(self):
        cache = EquilibriumCache()
        cache.record_sizes(["a", "b"], [2.0, 6.0])
        initial = cache.suggest_initial(["a", "b"], WAYS)
        assert initial is not None
        assert sum(initial) == pytest.approx(WAYS)
        # Relative proportions of the remembered solution survive.
        assert initial[1] / initial[0] == pytest.approx(3.0)
        assert cache.stats.warm_starts == 1

    def test_suggest_initial_requires_all_names(self):
        cache = EquilibriumCache()
        cache.record_sizes(["a"], [4.0])
        assert cache.suggest_initial(["a", "unknown"], WAYS) is None


def _feature(name, probs, inf_mass, api=0.05):
    hist = ReuseDistanceHistogram(probs, inf_mass)
    return FeatureVector(
        name=name,
        histogram=hist,
        api=api,
        spi_model=SpiModel(alpha=5e-8, beta=2e-9),
    )


@pytest.fixture
def features():
    return [
        _feature("heavy", [0.05] * 12, 0.4, api=0.06),
        _feature("light", [0.5, 0.3, 0.15], 0.05, api=0.01),
        _feature("mid", [0.1] * 8, 0.2, api=0.03),
    ]


class TestPerformanceModelCaching:
    def test_repeat_prediction_hits(self, features):
        model = PerformanceModel(ways=WAYS)
        model.register_all(features)
        first = model.predict(["heavy", "light"])
        second = model.predict(["heavy", "light"])
        assert model.cache_stats.hits == 1
        for a, b in zip(first.processes, second.processes):
            assert a == b

    def test_order_independent_results(self, features):
        model = PerformanceModel(ways=WAYS)
        model.register_all(features)
        forward = model.predict(["heavy", "light", "mid"])
        backward = model.predict(["mid", "light", "heavy"])
        assert model.cache_stats.hits == 1  # same canonical key
        by_fwd = {p.name: p for p in forward.processes}
        by_bwd = {p.name: p for p in backward.processes}
        for name in by_fwd:
            assert by_fwd[name].effective_size == by_bwd[name].effective_size
            assert by_fwd[name].spi == by_bwd[name].spi
        # Output order follows the request, not the canonical order.
        assert [p.name for p in backward.processes] == ["mid", "light", "heavy"]

    def test_frequency_ratio_in_key(self, features):
        model = PerformanceModel(ways=WAYS)
        model.register_all(features)
        model.predict(["heavy", "light"])
        model.predict(["heavy", "light"], frequency_ratios=[1.5, 1.0])
        assert model.cache_stats.hits == 0  # different operating point
        assert model.cache_stats.misses == 2

    def test_register_replacement_clears_cache(self, features):
        model = PerformanceModel(ways=WAYS)
        model.register_all(features)
        model.predict(["heavy", "light"])
        assert len(model.cache) == 1
        model.register(features[0])  # replace "heavy"
        assert len(model.cache) == 0
        # New name does not clear.
        model.predict(["heavy", "light"])
        model.register(_feature("new", [0.3, 0.3], 0.1))
        assert len(model.cache) == 1

    def test_warm_start_used_for_neighbour_combo(self, features):
        model = PerformanceModel(ways=WAYS)
        model.register_all(features)
        model.predict(["heavy", "light"])
        model.predict(["light", "mid"])
        before = model.cache_stats.warm_starts
        model.predict(["heavy", "mid"])  # both names now remembered
        assert model.cache_stats.warm_starts == before + 1

    def test_shared_cache_across_models(self, features):
        cache = EquilibriumCache()
        a = PerformanceModel(ways=WAYS, cache=cache)
        b = PerformanceModel(ways=WAYS, cache=cache)
        a.register_all(features)
        b.register_all(features)
        a.predict(["heavy", "light"])
        b.predict(["heavy", "light"])
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_disabled_cache_still_predicts(self, features):
        model = PerformanceModel(ways=WAYS, cache=EquilibriumCache(max_entries=0))
        model.register_all(features)
        first = model.predict(["heavy", "light"])
        second = model.predict(["heavy", "light"])
        for a, b in zip(first.processes, second.processes):
            assert a.spi == pytest.approx(b.spi, rel=1e-9)
        assert model.cache_stats.hits == 0

    def test_cached_equals_uncached(self, features):
        cached = PerformanceModel(ways=WAYS)
        uncached = PerformanceModel(
            ways=WAYS, cache=EquilibriumCache(max_entries=0)
        )
        cached.register_all(features)
        uncached.register_all(features)
        mixes = [
            ["heavy", "light"],
            ["light", "heavy"],
            ["heavy", "mid", "light"],
            ["heavy", "heavy", "light"],
        ]
        for mix in mixes:
            a = cached.predict(mix)
            b = uncached.predict(mix)
            for pa, pb in zip(a.processes, b.processes):
                assert pa.name == pb.name
                assert pa.effective_size == pytest.approx(
                    pb.effective_size, abs=1e-6
                )
                assert pa.spi == pytest.approx(pb.spi, rel=1e-6)


class TestCombinedModelSharedCache:
    @pytest.fixture
    def power_model(self):
        rng = np.random.default_rng(1)
        training = PowerTrainingSet()
        for _ in range(40):
            rates = {event: rng.uniform(0.0, 1e8) for event in RATE_EVENTS}
            watts = 10.0 + sum(1e-8 * value for value in rates.values())
            training.add(rates, watts)
        return CorePowerModel().fit(training)

    def _combined(self, power_model, features, cache):
        perf = PerformanceModel(ways=WAYS)
        perf.register_all(features)
        profiles = {
            f.name: ProfileVector(
                name=f.name,
                p_alone=15.0,
                l1rpi=0.6,
                l2rpi=0.05,
                brpi=0.2,
                fppi=0.1,
            )
            for f in features
        }
        return CombinedModel(
            topology=four_core_server(sets=64),
            performance_models=[perf],
            power_model=power_model,
            profiles=profiles,
            corun_cache=cache,
        )

    def test_corun_cache_shared_between_instances(self, power_model, features):
        cache = EquilibriumCache()
        first = self._combined(power_model, features, cache)
        second = self._combined(power_model, features, cache)
        assignment = {0: ("heavy",), 1: ("light",)}
        first.estimate_assignment_power(assignment)
        misses_after_first = cache.stats.misses
        second.estimate_assignment_power(assignment)
        # The second model answers from the first model's solutions.
        assert cache.stats.misses == misses_after_first
        assert cache.stats.hits > 0
        assert second.corun_cache_stats.hits == cache.stats.hits

    def test_repeated_search_queries_hit(self, power_model, features):
        combined = self._combined(power_model, features, EquilibriumCache())
        assignment = {0: ("heavy",), 1: ("light", "mid")}
        combined.estimate_assignment_power(assignment)
        combined.estimate_assignment_throughput(assignment)
        assert combined.corun_cache_stats.hits > 0


class TestAbsorbIdempotency:
    def test_same_document_absorbed_once(self):
        parent = EquilibriumCache(warm_start=False)
        entries = [("k1", "v1"), ("k2", "v2")]
        delta = CacheStats(
            hits=3, misses=2, evictions=1, warm_starts=0,
            entries=2, max_entries=4096,
        )
        parent.absorb(entries=entries, stats=delta, document_id=("chunk", 0))
        first = parent.stats
        # A replayed delivery of the same worker document (e.g. after a
        # pool retry) must not double-count counters or re-churn LRU.
        parent.absorb(entries=entries, stats=delta, document_id=("chunk", 0))
        second = parent.stats
        assert first == second
        assert second.hits == 3 and second.misses == 2
        assert parent.get("k1") == "v1"

    def test_distinct_documents_both_absorbed(self):
        parent = EquilibriumCache(warm_start=False)
        delta = CacheStats(
            hits=1, misses=1, evictions=0, warm_starts=0,
            entries=0, max_entries=4096,
        )
        parent.absorb(stats=delta, document_id=("chunk", 0))
        parent.absorb(stats=delta, document_id=("chunk", 1))
        assert parent.stats.hits == 2
        assert parent.stats.misses == 2

    def test_none_document_id_keeps_unconditional_merge(self):
        parent = EquilibriumCache(warm_start=False)
        delta = CacheStats(
            hits=1, misses=0, evictions=0, warm_starts=0,
            entries=0, max_entries=4096,
        )
        parent.absorb(stats=delta)
        parent.absorb(stats=delta)
        assert parent.stats.hits == 2
