"""Unit tests for the reuse-distance profilers."""


import pytest

from repro.cache.reuse import GlobalStackProfiler, SetReuseProfiler


class TestSetReuseProfiler:
    def test_first_access_is_cold(self):
        profiler = SetReuseProfiler(sets=4)
        assert profiler.record(0) is None
        assert profiler.cold_count == 1

    def test_immediate_reuse_distance_zero(self):
        profiler = SetReuseProfiler(sets=4)
        profiler.record(0)
        assert profiler.record(0) == 0

    def test_distance_counts_distinct_same_set_lines(self):
        profiler = SetReuseProfiler(sets=4)
        # Lines 0, 4, 8 all map to set 0; line 1 maps to set 1.
        profiler.record(0)
        profiler.record(4)
        profiler.record(1)  # different set: must not count
        profiler.record(8)
        assert profiler.record(0) == 2

    def test_repeats_do_not_inflate_distance(self):
        profiler = SetReuseProfiler(sets=1)
        profiler.record(0)
        profiler.record(1)
        profiler.record(1)
        profiler.record(1)
        assert profiler.record(0) == 1  # only one distinct line between

    def test_cyclic_pattern_distance(self):
        """A cyclic sweep over w lines has distance w-1 (stressmark)."""
        profiler = SetReuseProfiler(sets=1)
        w = 5
        for _ in range(4):
            for tag in range(w):
                profiler.record(tag)
        hist = profiler.histogram(include_cold=False)
        assert hist.probability(w - 1) == pytest.approx(1.0)

    def test_max_tracked_folds_to_cold(self):
        profiler = SetReuseProfiler(sets=1, max_tracked=2)
        for line in range(4):
            profiler.record(line)
        assert profiler.record(0) is None  # deeper than 2: treated cold

    def test_histogram_normalised(self):
        profiler = SetReuseProfiler(sets=2)
        for line in range(10):
            profiler.record(line % 4)
        hist = profiler.histogram()
        total = float(hist.probs.sum()) + hist.inf_mass
        assert total == pytest.approx(1.0)

    def test_reset_keeps_stacks(self):
        profiler = SetReuseProfiler(sets=1)
        profiler.record(0)
        profiler.reset()
        # Stack survived: this is a distance-0 reuse, not cold.
        assert profiler.record(0) == 0
        assert profiler.cold_count == 0

    def test_requires_power_of_two_sets(self):
        with pytest.raises(ValueError):
            SetReuseProfiler(sets=3)

    def test_empty_histogram_raises(self):
        with pytest.raises(ValueError):
            SetReuseProfiler(sets=2).histogram()


class TestGlobalStackProfiler:
    def test_counts_all_distinct_lines(self):
        profiler = GlobalStackProfiler()
        profiler.record(0)
        profiler.record(1)
        profiler.record(2)
        assert profiler.record(0) == 2

    def test_record_many(self):
        profiler = GlobalStackProfiler()
        profiler.record_many([0, 1, 0, 1])
        assert profiler.counts == {1: 2}
        assert profiler.cold_count == 2

    def test_histogram_includes_cold_mass(self):
        profiler = GlobalStackProfiler()
        profiler.record_many([0, 1, 0])
        hist = profiler.histogram(include_cold=True)
        assert hist.inf_mass == pytest.approx(2 / 3)
