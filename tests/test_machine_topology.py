"""Unit tests for machine topologies."""

import pytest

from repro.config import CacheGeometry
from repro.errors import ConfigurationError
from repro.machine.topology import (
    CacheDomain,
    MachineTopology,
    STANDARD_MACHINES,
    four_core_server,
    two_core_laptop,
    two_core_workstation,
)


class TestStandardMachines:
    def test_four_core_server_shape(self):
        topo = four_core_server()
        assert topo.num_cores == 4
        assert len(topo.domains) == 2
        assert all(d.geometry.ways == 16 for d in topo.domains)

    def test_workstation_shape(self):
        topo = two_core_workstation()
        assert topo.num_cores == 2
        assert len(topo.domains) == 1
        assert topo.domains[0].geometry.ways == 4

    def test_laptop_shape(self):
        topo = two_core_laptop()
        assert topo.domains[0].geometry.ways == 12

    def test_registry_complete(self):
        assert set(STANDARD_MACHINES) == {
            "4-core-server",
            "2-core-workstation",
            "2-core-laptop",
            "hetero-server",
        }
        for factory in STANDARD_MACHINES.values():
            assert factory(sets=32).num_cores >= 2

    def test_set_scaling(self):
        assert four_core_server(sets=64).domains[0].geometry.sets == 64

    def test_distinct_nominal_powers(self):
        powers = {f(sets=32).nominal_power_watts for f in STANDARD_MACHINES.values()}
        assert len(powers) == 3


class TestTopologyQueries:
    def test_domain_of(self):
        topo = four_core_server()
        assert topo.domain_of(0) is topo.domains[0]
        assert topo.domain_of(3) is topo.domains[1]

    def test_domain_index_of(self):
        topo = four_core_server()
        assert topo.domain_index_of(1) == 0
        assert topo.domain_index_of(2) == 1

    def test_partners_of(self):
        topo = four_core_server()
        assert topo.partners_of(0) == (1,)
        assert topo.partners_of(2) == (3,)

    def test_core_out_of_range(self):
        topo = two_core_workstation()
        with pytest.raises(ConfigurationError):
            topo.domain_of(5)


class TestValidation:
    def test_rejects_overlapping_domains(self):
        geometry = CacheGeometry(sets=16, ways=4)
        with pytest.raises(ConfigurationError):
            MachineTopology(
                name="bad",
                frequency_hz=1e8,
                domains=(
                    CacheDomain(core_ids=(0, 1), geometry=geometry),
                    CacheDomain(core_ids=(1, 2), geometry=geometry),
                ),
                nominal_power_watts=50,
            )

    def test_rejects_non_contiguous_core_ids(self):
        geometry = CacheGeometry(sets=16, ways=4)
        with pytest.raises(ConfigurationError):
            MachineTopology(
                name="bad",
                frequency_hz=1e8,
                domains=(CacheDomain(core_ids=(0, 2), geometry=geometry),),
                nominal_power_watts=50,
            )

    def test_rejects_empty_domain(self):
        geometry = CacheGeometry(sets=16, ways=4)
        with pytest.raises(ConfigurationError):
            CacheDomain(core_ids=(), geometry=geometry)

    def test_rejects_duplicate_cores_in_domain(self):
        geometry = CacheGeometry(sets=16, ways=4)
        with pytest.raises(ConfigurationError):
            CacheDomain(core_ids=(0, 0), geometry=geometry)
