"""Unit tests for prefetcher models."""

import pytest

from repro.cache.prefetch import NextLinePrefetcher, StridePrefetcher
from repro.cache.set_associative import SetAssociativeCache
from repro.config import CacheGeometry


@pytest.fixture
def cache():
    return SetAssociativeCache(CacheGeometry(sets=8, ways=4))


class TestNextLine:
    def test_prefetches_on_miss(self, cache):
        pf = NextLinePrefetcher(degree=1)
        hit = cache.access(0)
        pf.on_access(cache, 0, 0, hit)
        assert cache.contains(1) is True
        assert pf.stats.issued == 1

    def test_no_prefetch_on_hit(self, cache):
        pf = NextLinePrefetcher()
        cache.access(0)
        hit = cache.access(0)
        pf.on_access(cache, 0, 0, hit)
        assert pf.stats.issued == 0

    def test_redundant_prefetch_counted(self, cache):
        pf = NextLinePrefetcher()
        cache.access(1)  # target already resident
        hit = cache.access(0)
        pf.on_access(cache, 0, 0, hit)
        assert pf.stats.redundant == 1
        assert pf.stats.issued == 0

    def test_useful_prefetch_attribution(self, cache):
        pf = NextLinePrefetcher()
        pf.on_access(cache, 0, 0, cache.access(0))  # prefetches line 1
        hit = cache.access(1)
        pf.on_access(cache, 0, 1, hit)
        assert hit is True
        assert pf.stats.useful == 1
        assert pf.stats.accuracy == pytest.approx(1.0)  # 1 useful / 1 issued

    def test_prefetch_does_not_pollute_demand_stats(self, cache):
        pf = NextLinePrefetcher()
        pf.on_access(cache, 3, 0, cache.access(0, owner=3))
        stats = cache.stats.owner(3)
        assert stats.accesses == 1  # the prefetch access was discounted
        assert stats.misses == 1

    def test_degree_validation(self):
        with pytest.raises(ValueError):
            NextLinePrefetcher(degree=0)


class TestStride:
    def test_needs_confidence(self, cache):
        pf = StridePrefetcher(degree=1)
        pf.on_access(cache, 0, 10, cache.access(10))
        pf.on_access(cache, 0, 12, cache.access(12))  # stride 2 seen once
        assert pf.stats.issued == 0
        pf.on_access(cache, 0, 14, cache.access(14))  # stride 2 confirmed
        assert pf.stats.issued == 1
        assert cache.contains(16) is True

    def test_stride_reset_on_change(self, cache):
        pf = StridePrefetcher(degree=1)
        for line in (0, 2, 4):
            pf.on_access(cache, 0, line, cache.access(line))
        issued = pf.stats.issued
        pf.on_access(cache, 0, 11, cache.access(11))  # breaks the stride
        pf.on_access(cache, 0, 13, cache.access(13))  # new stride, once
        assert pf.stats.issued == issued

    def test_per_owner_tracking(self, cache):
        pf = StridePrefetcher(degree=1)
        # Interleaved owners with different strides must not confuse it.
        for step in range(4):
            pf.on_access(cache, 1, step * 2, cache.access(step * 2, owner=1))
            pf.on_access(cache, 2, 100 + step * 3, cache.access(100 + step * 3, owner=2))
        assert pf.stats.issued >= 2  # both streams eventually predicted

    def test_zero_stride_ignored(self, cache):
        pf = StridePrefetcher()
        for _ in range(5):
            pf.on_access(cache, 0, 7, cache.access(7))
        assert pf.stats.issued == 0
