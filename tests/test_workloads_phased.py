"""Unit tests for multi-phase workloads."""

import math

import pytest

from repro.cache.reuse import SetReuseProfiler
from repro.errors import ConfigurationError
from repro.workloads.generator import build_generator
from repro.workloads.phased import (
    PhaseSegment,
    PhasedTraceGenerator,
    make_phased_benchmark,
    phase_benchmark,
)
from repro.workloads.spec import BENCHMARKS

SETS = 16


@pytest.fixture
def workload():
    return make_phased_benchmark(
        name="phased-test",
        mix=BENCHMARKS["mcf"].mix,
        phases=(
            PhaseSegment(profile=((2, 1.0),), accesses=4_000),
            PhaseSegment(profile=((0, 0.5), (math.inf, 0.5)), accesses=2_000),
        ),
        base_cpi=0.5,
        penalty_cycles=160.0,
    )


class TestConstruction:
    def test_mixture_profile(self, workload):
        mixture = dict(workload.rd_profile)
        # Phase weights 2/3 and 1/3.
        assert mixture[2] == pytest.approx(2 / 3)
        assert mixture[0] == pytest.approx(1 / 6)
        assert mixture[math.inf] == pytest.approx(1 / 6)

    def test_longest_phase_index(self, workload):
        assert workload.longest_phase_index == 0

    def test_cycle_accesses(self, workload):
        assert workload.cycle_accesses == 6_000

    def test_needs_two_phases(self):
        with pytest.raises(ConfigurationError):
            make_phased_benchmark(
                name="x",
                mix=BENCHMARKS["mcf"].mix,
                phases=(PhaseSegment(profile=((0, 1.0),), accesses=10),),
                base_cpi=0.5,
                penalty_cycles=100.0,
            )

    def test_phase_segment_validation(self):
        with pytest.raises(ConfigurationError):
            PhaseSegment(profile=((0, 1.0),), accesses=0)
        with pytest.raises(ConfigurationError):
            PhaseSegment(profile=((0, 0.5),), accesses=10)  # not normalised


class TestPhaseExtraction:
    def test_phase_benchmark_fields(self, workload):
        phase0 = phase_benchmark(workload, 0)
        assert phase0.name == "phased-test#phase0"
        assert dict(phase0.rd_profile) == {2: 1.0}
        assert phase0.mix == workload.mix

    def test_phase_index_validation(self, workload):
        with pytest.raises(ConfigurationError):
            phase_benchmark(workload, 5)


class TestPhasedGenerator:
    def test_build_generator_dispatch(self, workload):
        generator = build_generator(workload, sets=SETS, seed=1)
        assert isinstance(generator, PhasedTraceGenerator)

    def test_phase_transitions_counted(self, workload):
        generator = PhasedTraceGenerator(workload, sets=SETS, seed=1)
        generator.take(workload.cycle_accesses * 2)
        assert generator.transitions >= 3

    def test_trace_matches_mixture_long_run(self, workload):
        generator = PhasedTraceGenerator(workload, sets=SETS, seed=2)
        profiler = SetReuseProfiler(sets=SETS)
        for _ in range(6_000):  # warm up one full cycle
            profiler.record(generator.next_line())
        profiler.reset()
        for _ in range(36_000):
            profiler.record(generator.next_line())
        hist = profiler.histogram()
        mixture = workload.intrinsic_histogram()
        for size in (1, 2, 3, 4):
            assert hist.mpa(size) == pytest.approx(mixture.mpa(size), abs=0.05)

    def test_phases_visible_in_trace(self, workload):
        """Within one phase the per-phase distribution dominates."""
        generator = PhasedTraceGenerator(workload, sets=SETS, seed=3)
        generator.take(workload.cycle_accesses)  # warm up a full cycle
        # Now at phase 0 start: sample within the phase.
        profiler = SetReuseProfiler(sets=SETS)
        for _ in range(3_500):
            profiler.record(generator.next_line())
        hist = profiler.histogram(include_cold=False)
        assert hist.probability(2) > 0.9  # phase-0 point mass
