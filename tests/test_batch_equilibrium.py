"""Tests for the stacked-numpy batch equilibrium solver.

The contract under test is the bit-compatibility policy of
``repro.core.batch_equilibrium``: every payload field of every result
(``sizes`` / ``mpas`` / ``spis`` / ``solver`` / ``iterations`` /
``contended``) is ``==`` to the scalar
``solve_equilibrium(row, ways, strategy=fallback_strategy)`` loop —
not merely close — for arbitrary batches, including batches where
individual rows are pathological (Newton-hostile inputs, unsniffable
profiles, custom slopes) and must fall back alone without perturbing
their siblings.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch_equilibrium import BATCH_MIN_STACK, BatchNewtonSolver
from repro.core.equilibrium import EquilibriumProcess, solve_equilibrium
from repro.core.histogram import ReuseDistanceHistogram
from repro.core.occupancy import OccupancyModel
from repro.core.performance_model import PerformanceModel
from repro.core.solver_cache import EquilibriumCache
from repro.errors import ConfigurationError
from repro.obs import Observer, use_observer
from repro.workloads import BENCHMARKS
from repro.core.feature import FeatureVector

WAYS = 12
FREQUENCY = 2e8


def make_profile(hist, api=0.05, penalty=150.0, base=0.8):
    """One shareable (occupancy, histogram) profile plus its constants."""
    return {
        "occupancy": OccupancyModel(hist, max_ways=WAYS),
        "hist": hist,
        "api": api,
        "alpha": api * penalty / FREQUENCY,
        "beta": base / FREQUENCY,
    }


def make_process(profile):
    """Fresh EquilibriumProcess over a shared profile (model idiom)."""
    return EquilibriumProcess(
        occupancy=profile["occupancy"],
        mpa=profile["hist"].mpa,
        api=profile["api"],
        alpha=profile["alpha"],
        beta=profile["beta"],
    )


def assert_results_equal(batch_result, scalar_result):
    """Exact payload equality (the policy's ``==``, not allclose)."""
    assert batch_result.sizes == scalar_result.sizes
    assert batch_result.mpas == scalar_result.mpas
    assert batch_result.spis == scalar_result.spis
    assert batch_result.solver == scalar_result.solver
    assert batch_result.iterations == scalar_result.iterations
    assert batch_result.contended == scalar_result.contended


@st.composite
def profile_pools(draw):
    """A pool of distinct profiles, like a registered benchmark suite."""
    n = draw(st.integers(min_value=2, max_value=5))
    pool = []
    for _ in range(n):
        size = draw(st.integers(min_value=1, max_value=16))
        weights = draw(
            st.lists(
                st.floats(min_value=0.01, max_value=1.0),
                min_size=size,
                max_size=size,
            )
        )
        inf_mass = draw(st.floats(min_value=0.01, max_value=1.0))
        api = draw(st.floats(min_value=0.005, max_value=0.1))
        penalty = draw(st.floats(min_value=50.0, max_value=300.0))
        base = draw(st.floats(min_value=0.3, max_value=1.5))
        pool.append(
            make_profile(
                ReuseDistanceHistogram(weights, inf_mass),
                api=api,
                penalty=penalty,
                base=base,
            )
        )
    return pool


@st.composite
def batches(draw):
    """A batch of mixes drawn from a shared profile pool.

    Profiles repeat across mixes (and may repeat within one mix), so
    the solver's table registry and same-``k`` stacking both get
    exercised the way ``PerformanceModel.predict_batch`` exercises
    them.
    """
    pool = draw(profile_pools())
    n_mixes = draw(st.integers(min_value=BATCH_MIN_STACK, max_value=10))
    batch = []
    for _ in range(n_mixes):
        k = draw(st.integers(min_value=2, max_value=4))
        indices = draw(
            st.lists(
                st.integers(min_value=0, max_value=len(pool) - 1),
                min_size=k,
                max_size=k,
            )
        )
        batch.append([make_process(pool[i]) for i in indices])
    return batch


class TestBatchScalarBitEquality:
    @given(batches())
    @settings(max_examples=25, deadline=None)
    def test_property_batch_equals_scalar_loop(self, batch):
        solver = BatchNewtonSolver()
        batched = solver.solve_batch(batch, WAYS)
        for row, result in zip(batch, batched):
            assert_results_equal(result, solve_equilibrium(row, WAYS))

    def test_benchmark_suite_sweep(self):
        """Deterministic sweep over the real benchmark profiles."""
        features = {
            name: FeatureVector.oracle(BENCHMARKS[name], FREQUENCY)
            for name in sorted(BENCHMARKS)
        }
        names = sorted(features)
        rng = random.Random(42)
        model = PerformanceModel(
            ways=WAYS, cache=EquilibriumCache(max_entries=0, warm_start=False)
        )
        model.register_all(features.values())
        batch = []
        for _ in range(60):
            k = rng.choice([2, 3, 4])
            mix = rng.sample(names, k)
            batch.append(model._equilibrium_inputs(mix, [1.0] * k))
        solver = BatchNewtonSolver()
        batched = solver.solve_batch(batch, WAYS)
        for row, result in zip(batch, batched):
            assert_results_equal(result, solve_equilibrium(row, WAYS))

    def test_strategy_newton_parity(self):
        """fallback_strategy='newton' matches the scalar newton loop."""
        pool = [
            make_profile(ReuseDistanceHistogram([1.0, 0.5, 0.2], 0.3)),
            make_profile(ReuseDistanceHistogram([0.2, 0.8], 0.5), api=0.02),
            make_profile(ReuseDistanceHistogram([0.5] * 6, 0.2), api=0.08),
        ]
        batch = [
            [make_process(pool[i]), make_process(pool[j])]
            for i in range(3)
            for j in range(3)
        ]
        solver = BatchNewtonSolver(fallback_strategy="newton")
        batched = solver.solve_batch(batch, WAYS)
        for row, result in zip(batch, batched):
            assert_results_equal(
                result, solve_equilibrium(row, WAYS, strategy="newton")
            )

    def test_bisection_strategy_delegates_entirely(self):
        pool = [make_profile(ReuseDistanceHistogram([1.0, 0.4], 0.4))]
        batch = [[make_process(pool[0])] * 2 for _ in range(5)]
        solver = BatchNewtonSolver(fallback_strategy="bisection")
        batched = solver.solve_batch(batch, WAYS)
        for row, result in zip(batch, batched):
            scalar = solve_equilibrium(row, WAYS, strategy="bisection")
            assert_results_equal(result, scalar)
            assert result.solver == "bisection"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError, match="strategy"):
            BatchNewtonSolver(fallback_strategy="magic")


class TestFallbackIsolation:
    """Pathological rows fall back alone; siblings stay vectorized."""

    def _normal_batch(self):
        pool = [
            make_profile(ReuseDistanceHistogram([1.0, 0.6, 0.3], 0.4)),
            make_profile(ReuseDistanceHistogram([0.3, 0.9, 0.1], 0.6), api=0.03),
        ]
        return [
            [make_process(pool[0]), make_process(pool[1])]
            for _ in range(BATCH_MIN_STACK)
        ]

    def test_newton_hostile_row_falls_back_alone(self):
        """A row whose Newton iteration degenerates (flat point-mass
        plateaus drive the batched residual non-finite / singular) is
        re-solved through the scalar ladder — landing on bisection —
        while its siblings keep their vectorized Newton results."""
        batch = self._normal_batch()
        hostile = [
            make_process(make_profile(ReuseDistanceHistogram.point_mass(1))),
            make_process(make_profile(ReuseDistanceHistogram.point_mass(10))),
        ]
        batch.append(hostile)
        solver = BatchNewtonSolver()
        batched = solver.solve_batch(batch, WAYS)
        for row, result in zip(batch, batched):
            assert_results_equal(result, solve_equilibrium(row, WAYS))
        # The hostile row really did exercise the fallback ladder...
        assert batched[-1].solver == "bisection"
        # ...and the healthy rows really did stay on the vector path.
        for result in batched[:-1]:
            assert result.solver == "newton"
            assert result.telemetry is not None
            assert result.telemetry.solver == "batch_newton"

    def test_unsniffable_mpa_falls_back_alone(self):
        class CustomHistogram(ReuseDistanceHistogram):
            def mpa(self, size):
                return super().mpa(size)

        batch = self._normal_batch()
        custom = make_profile(CustomHistogram([1.0, 0.5], 0.4))
        batch.append([make_process(custom), make_process(custom)])
        solver = BatchNewtonSolver()
        batched = solver.solve_batch(batch, WAYS)
        for row, result in zip(batch, batched):
            assert_results_equal(result, solve_equilibrium(row, WAYS))
        assert batched[-1].telemetry.solver != "batch_newton"
        for result in batched[:-1]:
            assert result.telemetry.solver == "batch_newton"

    def test_explicit_mpa_slope_falls_back(self):
        batch = self._normal_batch()
        profile = make_profile(ReuseDistanceHistogram([1.0, 0.5], 0.4))
        sloped = EquilibriumProcess(
            occupancy=profile["occupancy"],
            mpa=profile["hist"].mpa,
            api=profile["api"],
            alpha=profile["alpha"],
            beta=profile["beta"],
            mpa_slope=profile["hist"].mpa_slope,
        )
        batch.append([sloped, make_process(profile)])
        solver = BatchNewtonSolver()
        batched = solver.solve_batch(batch, WAYS)
        for row, result in zip(batch, batched):
            assert_results_equal(result, solve_equilibrium(row, WAYS))
        assert batched[-1].telemetry.solver != "batch_newton"

    def test_small_stacks_use_scalar_path(self):
        batch = self._normal_batch()[: BATCH_MIN_STACK - 1]
        solver = BatchNewtonSolver()
        batched = solver.solve_batch(batch, WAYS)
        for row, result in zip(batch, batched):
            assert_results_equal(result, solve_equilibrium(row, WAYS))
            assert result.telemetry.solver != "batch_newton"

    def test_validation_errors_match_scalar(self):
        batch = self._normal_batch()
        batch.append([])
        solver = BatchNewtonSolver()
        with pytest.raises(ConfigurationError):
            solver.solve_batch(batch, WAYS)
        too_many = [
            make_process(make_profile(ReuseDistanceHistogram([1.0], 0.5)))
            for _ in range(WAYS + 1)
        ]
        with pytest.raises(ConfigurationError):
            solver.solve_batch(self._normal_batch() + [too_many], WAYS)


@pytest.fixture(scope="module")
def features():
    return {
        name: FeatureVector.oracle(BENCHMARKS[name], FREQUENCY)
        for name in sorted(BENCHMARKS)
    }


MIXES = [
    ["gzip", "mcf"],
    ["art", "vpr", "gcc"],
    ["gzip", "gzip"],
    ["mcf", "gzip"],
    ["mcf", "gzip"],
    ["ammp", "equake", "twolf", "parser"],
]


def fresh_model(features, **kwargs):
    model = PerformanceModel(
        ways=8, cache=EquilibriumCache(warm_start=False), **kwargs
    )
    model.register_all(features.values())
    return model


class TestPredictBatch:
    def test_equals_sequential_predict_loop(self, features):
        sequential = [
            fresh_model(features).predict(list(mix)) for mix in MIXES
        ]
        batched = fresh_model(features).predict_batch(MIXES)
        assert tuple(sequential) == tuple(batched)

    def test_cache_counters_match_sequential(self, features):
        seq_model = fresh_model(features)
        for mix in MIXES:
            seq_model.predict(list(mix))
        bat_model = fresh_model(features)
        bat_model.predict_batch(MIXES)
        seq, bat = seq_model.cache_stats, bat_model.cache_stats
        assert (seq.hits, seq.misses, seq.entries) == (
            bat.hits,
            bat.misses,
            bat.entries,
        )
        # The duplicate mix probed once as a miss, once as a hit.
        assert bat.hits >= 1

    def test_second_call_is_all_hits(self, features):
        model = fresh_model(features)
        first = model.predict_batch(MIXES)
        before = model.cache_stats
        second = model.predict_batch(MIXES)
        assert first == second
        delta = model.cache_stats.delta_since(before)
        assert delta.misses == 0
        assert delta.hits == len(MIXES)

    def test_frequency_ratios_batch(self, features):
        mixes = [["gzip", "mcf"], ["art", "gcc"], ["vpr", "twolf"],
                 ["ammp", "parser"]]
        ratios = [[1.0, 1.5], None, [0.5, 1.0], [2.0, 1.0]]
        sequential = [
            fresh_model(features).predict(list(m), r)
            for m, r in zip(mixes, ratios)
        ]
        batched = fresh_model(features).predict_batch(mixes, ratios)
        assert tuple(sequential) == tuple(batched)
        with pytest.raises(ConfigurationError, match="one entry per mix"):
            fresh_model(features).predict_batch(mixes, [[1.0, 1.0]])

    def test_observer_delegates_to_sequential_spans(self, features):
        observer = Observer()
        model = fresh_model(features)
        with use_observer(observer):
            model.predict_batch(MIXES)
        counters = observer.metrics_dict()["counters"]
        assert counters["predict.calls"] == len(MIXES)

    def test_validation_before_any_solve(self, features):
        model = fresh_model(features)
        with pytest.raises(ConfigurationError):
            model.predict_batch([["gzip", "mcf"], [], ["art", "gcc"], ["vpr"]])
        assert model.cache_stats.entries == 0
