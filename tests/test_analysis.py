"""Unit tests for error metrics, tables and scenario enumeration."""

import pytest

from repro.analysis.errors import (
    absolute_error_pct,
    relative_error_pct,
    summarize,
)
from repro.analysis.tables import render_series, render_table
from repro.analysis.validation import (
    pairs_with_replacement,
    random_assignments,
    spread_assignments,
)
from repro.errors import ConfigurationError


class TestErrorMetrics:
    def test_relative_error(self):
        assert relative_error_pct(11.0, 10.0) == pytest.approx(10.0)
        assert relative_error_pct(9.0, 10.0) == pytest.approx(10.0)

    def test_relative_error_zero_truth(self):
        with pytest.raises(ConfigurationError):
            relative_error_pct(1.0, 0.0)

    def test_absolute_error_points(self):
        assert absolute_error_pct(0.45, 0.40) == pytest.approx(5.0)

    def test_summary(self):
        summary = summarize([1.0, 3.0, 7.0, 9.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(5.0)
        assert summary.maximum == 9.0
        assert summary.over_5pct == pytest.approx(50.0)

    def test_summary_empty(self):
        with pytest.raises(ConfigurationError):
            summarize([])

    def test_summary_negative(self):
        with pytest.raises(ConfigurationError):
            summarize([-1.0])

    def test_merge(self):
        a = summarize([2.0, 4.0])
        b = summarize([6.0, 8.0, 10.0])
        merged = a.merged_with(b)
        assert merged.count == 5
        assert merged.mean == pytest.approx(6.0)
        assert merged.maximum == 10.0


class TestTables:
    def test_render_basic(self):
        text = render_table(["Name", "X"], [("a", 1.234), ("bb", 5.0)])
        lines = text.splitlines()
        assert "Name" in lines[0]
        assert "1.23" in text
        assert "bb" in text

    def test_title_included(self):
        text = render_table(["A"], [("x",)], title="Table 9")
        assert text.startswith("Table 9")

    def test_row_length_validation(self):
        with pytest.raises(ConfigurationError):
            render_table(["A", "B"], [("only-one",)])

    def test_render_series_decimated(self):
        times = [i * 0.1 for i in range(100)]
        series = [[float(i) for i in range(100)]]
        text = render_series(times, series, labels=["watts"], max_rows=10)
        assert len(text.splitlines()) <= 15

    def test_render_series_label_mismatch(self):
        with pytest.raises(ConfigurationError):
            render_series([0.0], [[1.0]], labels=["a", "b"])


class TestScenarioEnumeration:
    def test_pairs_counts_match_paper(self):
        names8 = [f"b{i}" for i in range(8)]
        names10 = [f"b{i}" for i in range(10)]
        assert len(pairs_with_replacement(names8)) == 36
        assert len(pairs_with_replacement(names10)) == 55

    def test_pairs_include_self(self):
        pairs = pairs_with_replacement(["a", "b"])
        assert ("a", "a") in pairs

    def test_random_assignments_shape(self):
        assignments = random_assignments(
            ["a", "b", "c"], cores=[0, 1], processes_per_core=2, count=5, seed=1
        )
        assert len(assignments) == 5
        for assignment in assignments:
            assert set(assignment) == {0, 1}
            assert all(len(p) == 2 for p in assignment.values())

    def test_random_assignments_distinct(self):
        assignments = random_assignments(
            ["a", "b", "c", "d"], cores=[0, 1], processes_per_core=1, count=8, seed=2
        )
        keys = {
            tuple(sorted((c, p) for c, p in a.items())) for a in assignments
        }
        assert len(keys) == 8

    def test_random_assignments_deterministic(self):
        a = random_assignments(["a", "b"], [0], 1, 2, seed=5)
        b = random_assignments(["a", "b"], [0], 1, 2, seed=5)
        assert a == b

    def test_random_assignments_space_too_small(self):
        with pytest.raises(ConfigurationError):
            random_assignments(["a"], [0], 1, count=2, seed=1)

    def test_spread_assignments(self):
        assignments = spread_assignments(
            ["a", "b", "c"], total_processes=4, cores_used=[0, 2], count=4, seed=3
        )
        for assignment in assignments:
            assert set(assignment) == {0, 2}
            assert sum(len(p) for p in assignment.values()) == 4
            assert all(len(p) == 2 for p in assignment.values())

    def test_spread_requires_enough_processes(self):
        with pytest.raises(ConfigurationError):
            spread_assignments(["a"], total_processes=1, cores_used=[0, 1], count=1, seed=1)
