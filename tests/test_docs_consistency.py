"""Consistency checks between the documentation and the repository.

Documentation drifts; these tests pin the load-bearing claims:
every bench file named in README/DESIGN exists, every example named in
README exists, and the public API names used in README's code snippet
are importable.
"""

import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (REPO / name).read_text()


class TestReadme:
    def test_mentioned_bench_files_exist(self):
        text = read("README.md")
        for match in set(re.findall(r"bench_[a-z0-9_]+\.py", text)):
            assert (REPO / "benchmarks" / match).exists(), match

    def test_mentioned_examples_exist(self):
        text = read("README.md")
        for match in set(re.findall(r"examples/([a-z0-9_]+\.py)", text)):
            assert (REPO / "examples" / match).exists(), match

    def test_quickstart_snippet_imports(self):
        """The imports shown in the README snippet must be real."""
        from repro.config import PROFILE_SCALE  # noqa: F401
        from repro.core.performance_model import PerformanceModel  # noqa: F401
        from repro.machine.topology import four_core_server  # noqa: F401
        from repro.profiling.profiler import profile_process  # noqa: F401
        from repro.workloads.spec import BENCHMARKS  # noqa: F401

    def test_all_bench_files_mentioned(self):
        text = read("README.md")
        bench_files = sorted(
            p.name for p in (REPO / "benchmarks").glob("bench_*.py")
        )
        for name in bench_files:
            assert name in text, f"{name} missing from README bench table"


class TestDesign:
    def test_design_mentions_every_bench(self):
        text = read("DESIGN.md")
        for path in (REPO / "benchmarks").glob("bench_*.py"):
            assert path.name in text, f"{path.name} missing from DESIGN.md"

    def test_design_module_map_paths_exist(self):
        """Module paths in the DESIGN tree sketch must exist."""
        text = read("DESIGN.md")
        for module in re.findall(r"^\s{4}(\w+)\.py", text, flags=re.M):
            hits = list((REPO / "src" / "repro").rglob(f"{module}.py"))
            assert hits, f"DESIGN.md references missing module {module}.py"


class TestExperimentsDoc:
    def test_every_paper_table_covered(self):
        text = read("EXPERIMENTS.md")
        for artefact in ("Table 1", "Table 2", "Table 3", "Table 4", "Figure 2"):
            assert artefact in text

    def test_results_dir_referenced(self):
        assert "benchmarks/results/" in read("EXPERIMENTS.md")


class TestExamplesAreExecutableModules:
    @pytest.mark.parametrize(
        "name",
        [p.name for p in sorted((REPO / "examples").glob("*.py"))],
    )
    def test_example_compiles(self, name):
        source = (REPO / "examples" / name).read_text()
        compile(source, name, "exec")
        assert '"""' in source.lstrip()[:400]  # has a docstring header
        assert "__main__" in source  # runnable as a script
