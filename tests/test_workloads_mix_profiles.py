"""Unit tests for instruction mixes and profile builders."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.workloads.mix import InstructionMix
from repro.workloads.profiles import (
    bump,
    combine,
    geometric,
    profile_mean,
    streaming,
    validate_profile,
)


class TestInstructionMix:
    def test_api_alias(self):
        mix = InstructionMix(l1rpi=0.4, l2rpi=0.05, brpi=0.2, fppi=0.1)
        assert mix.api == 0.05

    def test_rates_per_second(self):
        mix = InstructionMix(l1rpi=0.4, l2rpi=0.05, brpi=0.2, fppi=0.1)
        rates = mix.rates_per_second(spi=1e-9, l2mpr=0.5)
        assert rates["l1rps"] == pytest.approx(0.4e9)
        assert rates["l2mps"] == pytest.approx(0.025e9)

    def test_l2_cannot_exceed_l1(self):
        with pytest.raises(ConfigurationError):
            InstructionMix(l1rpi=0.05, l2rpi=0.1, brpi=0.1, fppi=0.0)

    def test_l2_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            InstructionMix(l1rpi=0.4, l2rpi=0.0, brpi=0.1, fppi=0.0)

    def test_rate_range_validation(self):
        with pytest.raises(ConfigurationError):
            InstructionMix(l1rpi=1.5, l2rpi=0.05, brpi=0.1, fppi=0.0)

    def test_rates_validation(self):
        mix = InstructionMix(l1rpi=0.4, l2rpi=0.05, brpi=0.2, fppi=0.1)
        with pytest.raises(ConfigurationError):
            mix.rates_per_second(spi=0.0, l2mpr=0.5)
        with pytest.raises(ConfigurationError):
            mix.rates_per_second(spi=1e-9, l2mpr=1.5)


class TestProfileBuilders:
    def test_geometric_mass_and_mean(self):
        profile = geometric(mean=2.0, max_distance=50)
        total = sum(profile.values())
        assert total == pytest.approx(1.0)
        observed_mean = sum(d * w for d, w in profile.items())
        assert observed_mean == pytest.approx(2.0, abs=0.1)

    def test_bump_centered(self):
        profile = bump(center=10.0, width=2.0, max_distance=30)
        peak = max(profile, key=profile.get)
        assert peak == 10

    def test_streaming_is_inf(self):
        assert streaming(0.5) == {math.inf: 0.5}

    def test_combine_normalises(self):
        profile = combine(geometric(1.0, 5, weight=3.0), streaming(1.0))
        validate_profile(profile)
        inf_weight = dict(profile)[math.inf]
        assert inf_weight == pytest.approx(0.25)

    def test_combine_sorted_with_inf_last(self):
        profile = combine(streaming(0.3), geometric(1.0, 4, weight=0.7))
        distances = [d for d, _ in profile]
        assert distances == sorted(distances)
        assert distances[-1] == math.inf

    def test_validate_rejects_unnormalised(self):
        with pytest.raises(ConfigurationError):
            validate_profile(((0, 0.5),))

    def test_validate_rejects_fractional_distance(self):
        with pytest.raises(ConfigurationError):
            validate_profile(((0.5, 1.0),))

    def test_profile_mean_finite_only(self):
        profile = ((0, 0.25), (2, 0.25), (math.inf, 0.5))
        assert profile_mean(profile) == pytest.approx(1.0)

    def test_profile_mean_all_streaming(self):
        assert profile_mean(((math.inf, 1.0),)) == math.inf


class TestBuilderValidation:
    def test_geometric_rejects_negative_mean(self):
        with pytest.raises(ConfigurationError):
            geometric(mean=-1.0, max_distance=5)

    def test_bump_rejects_zero_width(self):
        with pytest.raises(ConfigurationError):
            bump(center=5, width=0, max_distance=10)

    def test_combine_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            combine({})
