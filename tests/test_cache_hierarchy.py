"""Unit tests for the two-level cache hierarchy."""

import pytest

from repro.cache.hierarchy import CacheHierarchy
from repro.config import CacheGeometry
from repro.errors import ConfigurationError


@pytest.fixture
def hierarchy():
    return CacheHierarchy(
        l1_geometry=CacheGeometry(sets=2, ways=2),
        l2_geometry=CacheGeometry(sets=8, ways=4),
        cores=2,
    )


class TestHierarchy:
    def test_cold_access_misses_both(self, hierarchy):
        outcome = hierarchy.access(0, line=0)
        assert outcome.level == "memory"

    def test_l1_hit_shields_l2(self, hierarchy):
        hierarchy.access(0, line=0)
        l2_accesses_before = hierarchy.l2.stats.accesses
        outcome = hierarchy.access(0, line=0)
        assert outcome.level == "l1"
        assert hierarchy.l2.stats.accesses == l2_accesses_before

    def test_l2_hit_after_l1_eviction(self, hierarchy):
        hierarchy.access(0, line=0)
        # Push line 0 out of the tiny L1 (set 0 holds lines 0, 2, 4...).
        hierarchy.access(0, line=2)
        hierarchy.access(0, line=4)
        outcome = hierarchy.access(0, line=0)
        assert outcome.level == "l2"

    def test_private_l1_per_core(self, hierarchy):
        hierarchy.access(0, line=0)
        outcome = hierarchy.access(1, line=0)
        # Core 1's L1 is cold; the shared L2 has the line.
        assert outcome.l1_hit is False
        assert outcome.l2_hit is True

    def test_miss_rates_per_owner(self, hierarchy):
        for _ in range(2):
            hierarchy.access(0, line=0, owner=7)
        rates = hierarchy.miss_rates(7)
        assert rates["l1"] == pytest.approx(0.5)
        assert rates["l2"] == pytest.approx(1.0)  # one access, one miss

    def test_flush(self, hierarchy):
        hierarchy.access(0, line=0)
        hierarchy.flush()
        assert hierarchy.access(0, line=0).level == "memory"

    def test_rejects_core_out_of_range(self, hierarchy):
        with pytest.raises(ConfigurationError):
            hierarchy.access(5, line=0)

    def test_rejects_l1_bigger_than_l2(self):
        with pytest.raises(ConfigurationError):
            CacheHierarchy(
                l1_geometry=CacheGeometry(sets=64, ways=8),
                l2_geometry=CacheGeometry(sets=8, ways=4),
                cores=1,
            )
