"""Unit tests for configuration dataclasses."""

import pytest

from repro.config import (
    BENCH_SCALE,
    CacheGeometry,
    PROFILE_SCALE,
    RandomSeeds,
    SimulationScale,
    TEST_SCALE,
)
from repro.errors import ConfigurationError


class TestCacheGeometry:
    def test_basic_properties(self):
        geometry = CacheGeometry(sets=256, ways=16, line_bytes=64)
        assert geometry.lines == 4096
        assert geometry.capacity_bytes == 4096 * 64

    def test_set_index_and_tag_roundtrip(self):
        geometry = CacheGeometry(sets=64, ways=4)
        line = (123 << 6) | 17
        assert geometry.set_index(line) == 17
        assert geometry.tag(line) == 123

    def test_set_index_covers_all_sets(self):
        geometry = CacheGeometry(sets=8, ways=2)
        indices = {geometry.set_index(line) for line in range(64)}
        assert indices == set(range(8))

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(sets=100, ways=4)

    def test_rejects_zero_sets(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(sets=0, ways=4)

    def test_rejects_zero_ways(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(sets=16, ways=0)

    def test_rejects_odd_line_size(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(sets=16, ways=2, line_bytes=48)

    def test_scaled_preserves_ways(self):
        geometry = CacheGeometry(sets=8192, ways=16)
        scaled = geometry.scaled(1 / 64)
        assert scaled.ways == 16
        assert scaled.sets == 128

    def test_scaled_rounds_to_power_of_two(self):
        geometry = CacheGeometry(sets=1024, ways=8)
        scaled = geometry.scaled(0.3)  # 307.2 -> 256
        assert scaled.sets == 256

    def test_scaled_minimum_one_set(self):
        geometry = CacheGeometry(sets=4, ways=2)
        assert geometry.scaled(0.001).sets == 1

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(sets=4, ways=2).scaled(0)


class TestSimulationScale:
    def test_defaults_are_valid(self):
        for scale in (BENCH_SCALE, TEST_SCALE, PROFILE_SCALE):
            assert scale.warmup_accesses > 0
            assert scale.measure_s > 0

    @pytest.mark.parametrize(
        "field",
        [
            "warmup_accesses",
            "measure_accesses",
            "warmup_s",
            "measure_s",
            "hpc_period_s",
            "timeslice_s",
        ],
    )
    def test_rejects_nonpositive_fields(self, field):
        kwargs = {field: 0}
        with pytest.raises(ConfigurationError):
            SimulationScale(**kwargs)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            TEST_SCALE.warmup_accesses = 1  # type: ignore[misc]


class TestRandomSeeds:
    def test_child_seeds_differ(self):
        seeds = RandomSeeds()
        children = [seeds.child(i) for i in range(5)]
        traces = {c.trace for c in children}
        assert len(traces) == 5

    def test_child_is_deterministic(self):
        assert RandomSeeds().child(3) == RandomSeeds().child(3)
