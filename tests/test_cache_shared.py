"""Unit tests for the shared-cache contention monitor."""

import pytest

from repro.cache.set_associative import SetAssociativeCache
from repro.cache.shared import ContentionMonitor
from repro.config import CacheGeometry


@pytest.fixture
def monitor():
    cache = SetAssociativeCache(CacheGeometry(sets=4, ways=4))
    return ContentionMonitor(cache, sample_every=4)


class TestContentionMonitor:
    def test_forwarding(self, monitor):
        assert monitor.access(0, owner=1) is False
        assert monitor.access(0, owner=1) is True

    def test_occupancy_sampling(self, monitor):
        for line in range(8):
            monitor.access(line, owner=1)
        occ = monitor.mean_occupancy_ways(1)
        assert occ > 0

    def test_start_measurement_resets_window(self, monitor):
        for line in range(8):
            monitor.access(line, owner=1)
        monitor.start_measurement()
        stats = monitor.window_stats(1)
        assert stats.accesses == 0
        monitor.access(0, owner=1)
        assert monitor.window_stats(1).accesses == 1

    def test_summary_fields(self, monitor):
        for line in range(16):
            monitor.access(line % 8, owner=2)
        summary = monitor.summary(2)
        assert summary.accesses == 16
        assert summary.misses == 8
        assert summary.mpa == pytest.approx(0.5)
        assert summary.occupancy_ways > 0

    def test_summaries_cover_all_owners(self, monitor):
        monitor.access(0, owner=1)
        monitor.access(1, owner=2)
        assert set(monitor.summaries()) == {1, 2}

    def test_two_owners_split_occupancy(self):
        cache = SetAssociativeCache(CacheGeometry(sets=1, ways=4))
        monitor = ContentionMonitor(cache, sample_every=1)
        monitor.start_measurement()
        # Alternate two owners, each cycling 2 private lines.
        for _ in range(100):
            for tag, owner in ((0, 1), (100, 2), (1, 1), (101, 2)):
                monitor.access(tag, owner=owner)
        assert monitor.mean_occupancy_ways(1) == pytest.approx(2.0, abs=0.3)
        assert monitor.mean_occupancy_ways(2) == pytest.approx(2.0, abs=0.3)

    def test_rejects_bad_sample_interval(self):
        cache = SetAssociativeCache(CacheGeometry(sets=1, ways=2))
        with pytest.raises(ValueError):
            ContentionMonitor(cache, sample_every=0)
