"""Tests for :mod:`repro.hetero` — core types, P-states, energy-aware
assignment.

Four layers, pinned separately:

- **Types**: :class:`PState` / :class:`CoreType` /
  :class:`HeteroMachineSpec` validation, operating-point arithmetic,
  and bit-exact JSON round-trips with field-path error messages.
- **Homogeneous parity**: a unit spec (every multiplier exactly 1.0)
  produces a :class:`FleetAssignment` whose every numeric field is
  bit-identical to solving the plain machine, across all three
  solvers — property-tested with hypothesis.
- **Oracle equality**: the P-state-aware exhaustive solver matches an
  independent (placement x per-core P-state) enumeration exactly on
  small instances, and the anneal path matches the exhaustive one.
- **Budget pressure**: a watts budget below the all-nominal optimum
  forces the solver into lower P-states while staying feasible.
"""

import itertools
import json
import math
from collections import defaultdict

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ProfileSuiteResult, solve_assignment
from repro.core.feature import FeatureVector, ProfileVector
from repro.core.power_model import CorePowerModel, PowerTrainingSet
from repro.errors import ConfigurationError
from repro.events import Event, RATE_EVENTS
from repro.fleet import AssignmentRequest, FleetSpec, MachineGroup, fleet_score
from repro.fleet.evaluator import FleetEvaluator
from repro.hetero import (
    BIG_CORE,
    CORE_TYPE_CATALOG,
    LITTLE_CORE,
    CoreType,
    HeteroMachineSpec,
    PState,
    big_little_spec,
    unit_spec,
)
from repro.io import fleet_spec_from_dict, fleet_spec_to_dict
from repro.workloads.spec import BENCHMARKS

NAMES = ["mcf", "gzip", "art"]
MACHINE = "2-core-workstation"


def _oracle_suite(names=NAMES, machine=MACHINE):
    return ProfileSuiteResult(
        machine=machine,
        features={n: FeatureVector.oracle(BENCHMARKS[n], 2e8) for n in names},
        profiles={
            n: ProfileVector(
                name=n,
                p_alone=20.0 + 2.0 * i,
                l1rpi=0.4,
                l2rpi=0.05,
                brpi=0.2,
                fppi=0.01 * i,
            )
            for i, n in enumerate(names)
        },
    )


@pytest.fixture(scope="module")
def suite():
    return _oracle_suite()


@pytest.fixture(scope="module")
def power_model():
    rng = np.random.default_rng(0)
    training = PowerTrainingSet()
    for _ in range(40):
        rates = {event: rng.uniform(0, 1e8) for event in RATE_EVENTS}
        power = 11.0 + 8e-8 * rates[Event.L1_REFS] + 2e-7 * rates[Event.L2_MISSES]
        training.add(rates, power)
    return CorePowerModel().fit(training, idle_core_watts=11.0)


def _hetero_fleet(machine=MACHINE, sets=64):
    return FleetSpec(
        groups=(
            MachineGroup(
                machine=machine,
                count=1,
                sets=sets,
                hetero=big_little_spec(machine),
            ),
        )
    )


# ----------------------------------------------------------------------
# Value types
# ----------------------------------------------------------------------
class TestPState:
    def test_voltage_scaling_rules(self):
        pstate = PState("p1", frequency_ratio=0.8, voltage_ratio=0.9)
        assert pstate.dynamic_multiplier == 0.9 * 0.9
        assert pstate.static_multiplier == 0.9
        assert not pstate.is_unit
        assert PState("p0").is_unit

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError, match="frequency_ratio"):
            PState("p", frequency_ratio=0.0)
        with pytest.raises(ConfigurationError, match="voltage_ratio"):
            PState("p", voltage_ratio=-1.0)
        with pytest.raises(ConfigurationError, match="name"):
            PState("")


class TestCoreType:
    def test_operating_point_composes_scales(self):
        point = LITTLE_CORE.operating_point(1)
        pstate = LITTLE_CORE.pstates[1]
        assert point.frequency_ratio == 0.6 * pstate.frequency_ratio
        assert point.dynamic_multiplier == 0.45 * pstate.voltage_ratio**2
        assert point.static_multiplier == 0.55 * pstate.voltage_ratio

    def test_operating_point_range_checked(self):
        with pytest.raises(ConfigurationError, match="out of range"):
            BIG_CORE.operating_point(len(BIG_CORE.pstates))

    def test_rejects_duplicate_pstate_names(self):
        with pytest.raises(ConfigurationError, match="duplicate pstate"):
            CoreType(name="x", pstates=(PState("p0"), PState("p0", 0.5, 0.5)))

    def test_rejects_empty_pstates(self):
        with pytest.raises(ConfigurationError, match="at least one pstate"):
            CoreType(name="x", pstates=())

    def test_rejects_non_positive_scales(self):
        with pytest.raises(ConfigurationError, match="perf_scale"):
            CoreType(name="x", perf_scale=0.0)

    def test_idle_pstate_is_deepest(self):
        assert BIG_CORE.idle_pstate_index == 2  # lowest voltage = lowest leak
        assert CoreType(name="one").idle_pstate_index == 0

    def test_unit_predicate(self):
        assert CoreType(name="base").is_unit
        assert not BIG_CORE.is_unit  # p1/p2 scale the multipliers


class TestHeteroMachineSpec:
    def test_big_little_layout(self):
        spec = big_little_spec("4-core-server")
        assert spec.num_cores == 4
        assert spec.core_type(0) is BIG_CORE
        assert spec.core_type(1) is LITTLE_CORE
        assert spec.pstate_counts == (3, 2, 3, 2)
        assert spec.has_pstate_choice
        assert not spec.is_unit

    def test_unit_spec_is_unit(self):
        spec = unit_spec(MACHINE)
        assert spec.is_unit
        assert not spec.has_pstate_choice
        assert spec.pstate_counts == (1, 1)

    def test_rejects_unknown_machine(self):
        with pytest.raises(ConfigurationError, match="unknown machine"):
            HeteroMachineSpec(
                machine="9-core-toaster",
                core_types=(BIG_CORE,),
                core_type_of=(0,),
            )

    def test_rejects_wrong_core_count(self):
        with pytest.raises(ConfigurationError, match="one core type index"):
            HeteroMachineSpec(
                machine=MACHINE, core_types=(BIG_CORE,), core_type_of=(0,)
            )

    def test_rejects_out_of_range_index(self):
        with pytest.raises(ConfigurationError, match="out of range"):
            HeteroMachineSpec(
                machine=MACHINE, core_types=(BIG_CORE,), core_type_of=(0, 1)
            )

    def test_rejects_duplicate_core_type_names(self):
        with pytest.raises(ConfigurationError, match="duplicate core type"):
            HeteroMachineSpec(
                machine=MACHINE,
                core_types=(BIG_CORE, CoreType(name="big")),
                core_type_of=(0, 1),
            )

    def test_spec_is_hashable(self):
        assert hash(big_little_spec(MACHINE)) == hash(big_little_spec(MACHINE))
        assert big_little_spec(MACHINE) != unit_spec(MACHINE)

    def test_catalog_entries(self):
        assert CORE_TYPE_CATALOG["big"] is BIG_CORE
        assert CORE_TYPE_CATALOG["little"] is LITTLE_CORE


class TestMachineGroupHetero:
    def test_accepts_matching_spec(self):
        group = MachineGroup(machine=MACHINE, hetero=big_little_spec(MACHINE))
        assert group.hetero.machine == MACHINE

    def test_rejects_machine_mismatch(self):
        with pytest.raises(ConfigurationError, match="hetero spec is for"):
            MachineGroup(
                machine="4-core-server", hetero=big_little_spec(MACHINE)
            )

    def test_rejects_wrong_type(self):
        with pytest.raises(ConfigurationError, match="HeteroMachineSpec"):
            MachineGroup(machine=MACHINE, hetero={"machine": MACHINE})


# ----------------------------------------------------------------------
# JSON round-trips and field-path errors
# ----------------------------------------------------------------------
class TestHeteroIO:
    def test_spec_round_trips(self):
        spec = big_little_spec("4-core-server")
        document = spec.to_dict()
        json.dumps(document)  # strictly serialisable
        assert HeteroMachineSpec.from_dict(document) == spec

    def test_fleet_spec_round_trips_with_hetero(self):
        fleet = _hetero_fleet()
        document = fleet_spec_to_dict(fleet)
        assert fleet_spec_from_dict(document) == fleet
        assert document["groups"][0]["hetero"]["kind"] == "hetero_machine_spec"

    def test_homogeneous_groups_serialise_null_hetero(self):
        fleet = FleetSpec(groups=(MachineGroup(machine=MACHINE),))
        document = fleet_spec_to_dict(fleet)
        assert document["groups"][0]["hetero"] is None
        assert fleet_spec_from_dict(document) == fleet

    def test_field_path_on_bad_ratio(self):
        document = fleet_spec_to_dict(_hetero_fleet())
        hetero = document["groups"][0]["hetero"]
        hetero["core_types"][0]["pstates"][1]["frequency_ratio"] = "fast"
        with pytest.raises(
            ConfigurationError,
            match=r"fleet\.groups\[0\]\.hetero\.core_types\[0\]"
            r"\.pstates\[1\]\.frequency_ratio",
        ):
            fleet_spec_from_dict(document)

    def test_field_path_on_missing_core_type_name(self):
        document = fleet_spec_to_dict(_hetero_fleet())
        del document["groups"][0]["hetero"]["core_types"][1]["name"]
        with pytest.raises(
            ConfigurationError,
            match=r"fleet\.groups\[0\]\.hetero\.core_types\[1\]\.name is missing",
        ):
            fleet_spec_from_dict(document)

    def test_field_path_on_bad_core_type_of(self):
        document = fleet_spec_to_dict(_hetero_fleet())
        document["groups"][0]["hetero"]["core_type_of"][1] = "little"
        with pytest.raises(
            ConfigurationError,
            match=r"fleet\.groups\[0\]\.hetero\.core_type_of\[1\]",
        ):
            fleet_spec_from_dict(document)

    def test_request_round_trips_with_hetero_fleet(self):
        request = AssignmentRequest(
            processes=("mcf", "gzip"),
            objective="throughput-under-watts-budget",
            fleet=_hetero_fleet(),
            power_budget_watts=90.0,
        )
        assert AssignmentRequest.from_dict(request.to_dict()) == request

    def test_assignment_round_trips_pstates(self, suite, power_model):
        request = AssignmentRequest(
            processes=("mcf", "gzip"),
            objective="throughput-under-watts-budget",
            solver="exhaustive",
            fleet=_hetero_fleet(),
            power_budget_watts=90.0,
        )
        result = solve_assignment(request, suite, power_model)
        restored = type(result).from_dict(result.to_dict())
        assert restored == result
        busy = [m for m in result.machines if m.assignment]
        assert busy and all(m.pstates is not None for m in busy)


# ----------------------------------------------------------------------
# Homogeneous parity (unit spec == plain machine, bit for bit)
# ----------------------------------------------------------------------
def _comparable(result):
    """Everything but the fleet spec (which deliberately differs)."""
    return (
        result.objective,
        result.solver,
        result.refinement,
        result.processes,
        tuple(
            (m.machine, m.group, m.index, tuple(sorted(m.assignment.items())),
             m.predicted_watts, m.predicted_ips)
            for m in result.machines
        ),
        result.predicted_watts,
        result.predicted_ips,
        result.score,
        result.evaluations,
        result.iterations,
        result.improvements,
        result.seed,
    )


class TestHomogeneousParity:
    @settings(max_examples=6, deadline=None)
    @given(
        subset=st.lists(st.sampled_from(NAMES), min_size=1, max_size=3),
        solver=st.sampled_from(["exhaustive", "greedy", "anneal"]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_unit_spec_matches_plain_machine(self, subset, solver, seed):
        suite = _oracle_suite()
        rng = np.random.default_rng(0)
        training = PowerTrainingSet()
        for _ in range(40):
            rates = {event: rng.uniform(0, 1e8) for event in RATE_EVENTS}
            power = (
                11.0 + 8e-8 * rates[Event.L1_REFS] + 2e-7 * rates[Event.L2_MISSES]
            )
            training.add(rates, power)
        power_model = CorePowerModel().fit(training, idle_core_watts=11.0)
        plain = FleetSpec(groups=(MachineGroup(machine=MACHINE, sets=64),))
        unit = FleetSpec(
            groups=(
                MachineGroup(machine=MACHINE, sets=64, hetero=unit_spec(MACHINE)),
            )
        )
        kwargs = dict(
            processes=tuple(subset),
            objective="min-energy-per-instruction",
            solver=solver,
            max_iterations=60,
            seed=seed,
        )
        baseline = solve_assignment(
            AssignmentRequest(fleet=plain, **kwargs), suite, power_model
        )
        hetero = solve_assignment(
            AssignmentRequest(fleet=unit, **kwargs), suite, power_model
        )
        assert _comparable(hetero) == _comparable(baseline)

    def test_unit_spec_pstates_are_reported_nominal(self, suite, power_model):
        request = AssignmentRequest(
            processes=("mcf",),
            solver="exhaustive",
            fleet=FleetSpec(
                groups=(
                    MachineGroup(
                        machine=MACHINE, sets=64, hetero=unit_spec(MACHINE)
                    ),
                )
            ),
        )
        result = solve_assignment(request, suite, power_model)
        busy = [m for m in result.machines if m.assignment]
        assert busy[0].pstates == {core: 0 for core in busy[0].assignment}


# ----------------------------------------------------------------------
# Oracle equality (placement x P-state enumeration)
# ----------------------------------------------------------------------
def _oracle_best_score(evaluator, names, spec, objective, budget):
    """Independent exhaustive enumeration over one hetero machine."""
    counts = spec.pstate_counts
    best = float("inf")
    for placement in itertools.product(range(spec.num_cores), repeat=len(names)):
        assignment = defaultdict(list)
        for name, core in zip(names, placement):
            assignment[core].append(name)
        busy = sorted(assignment)
        for choice in itertools.product(*(range(counts[core]) for core in busy)):
            watts, ips = evaluator.machine_metrics(
                0,
                {core: tuple(sorted(assignment[core])) for core in busy},
                dict(zip(busy, choice)),
            )
            best = min(best, fleet_score(objective, watts, ips, budget))
    return best


class TestOracleEquality:
    @pytest.mark.parametrize(
        "objective,budget",
        [
            ("throughput-under-watts-budget", 90.0),
            ("throughput-under-watts-budget", 62.0),
            ("min-energy-per-instruction", None),
        ],
    )
    def test_exhaustive_matches_independent_enumeration(
        self, suite, power_model, objective, budget
    ):
        fleet = _hetero_fleet()
        names = ("mcf", "gzip")
        request = AssignmentRequest(
            processes=names,
            objective=objective,
            solver="exhaustive",
            fleet=fleet,
            power_budget_watts=budget,
        )
        result = solve_assignment(request, suite, power_model)
        evaluator = FleetEvaluator(
            suite.features, suite.profiles, power_model, fleet
        )
        oracle = _oracle_best_score(
            evaluator, names, fleet.groups[0].hetero, objective, budget
        )
        assert result.score == oracle

    def test_anneal_matches_exhaustive_on_small_instance(
        self, suite, power_model
    ):
        kwargs = dict(
            processes=("mcf", "gzip"),
            objective="throughput-under-watts-budget",
            fleet=_hetero_fleet(),
            power_budget_watts=90.0,
            seed=7,
        )
        exhaustive = solve_assignment(
            AssignmentRequest(solver="exhaustive", **kwargs), suite, power_model
        )
        anneal = solve_assignment(
            AssignmentRequest(solver="anneal", **kwargs), suite, power_model
        )
        assert anneal.score == exhaustive.score

    def test_anneal_is_deterministic(self, suite, power_model):
        request = AssignmentRequest(
            processes=("mcf", "gzip", "art"),
            objective="throughput-under-watts-budget",
            solver="anneal",
            fleet=_hetero_fleet(),
            power_budget_watts=95.0,
            max_iterations=300,
            seed=11,
        )
        first = solve_assignment(request, suite, power_model)
        second = solve_assignment(request, suite, power_model)
        assert first == second

    def test_greedy_never_beaten_by_anneal_regression(self, suite, power_model):
        kwargs = dict(
            processes=("mcf", "gzip", "art"),
            objective="throughput-under-watts-budget",
            fleet=_hetero_fleet(),
            power_budget_watts=95.0,
            max_iterations=300,
            seed=3,
        )
        greedy = solve_assignment(
            AssignmentRequest(solver="greedy", **kwargs), suite, power_model
        )
        anneal = solve_assignment(
            AssignmentRequest(solver="anneal", **kwargs), suite, power_model
        )
        assert anneal.score <= greedy.score


# ----------------------------------------------------------------------
# Budget pressure
# ----------------------------------------------------------------------
class TestBudgetPressure:
    def test_budget_respected_and_improvements_feasible(
        self, suite, power_model
    ):
        request = AssignmentRequest(
            processes=("mcf", "gzip"),
            objective="throughput-under-watts-budget",
            solver="anneal",
            fleet=_hetero_fleet(),
            power_budget_watts=90.0,
            max_iterations=200,
            seed=5,
        )
        result = solve_assignment(request, suite, power_model)
        assert result.predicted_watts <= 90.0
        # every recorded improvement is a feasible incumbent: an
        # over-budget candidate scores inf and can never be recorded.
        assert all(math.isfinite(score) for _, score in result.improvements)

    def test_tight_budget_forces_lower_pstates(self, suite, power_model):
        fleet = _hetero_fleet()
        names = ("mcf", "gzip")
        evaluator = FleetEvaluator(
            suite.features, suite.profiles, power_model, fleet
        )
        spec = fleet.groups[0].hetero
        nominal_levels, all_levels = [], []
        for placement in itertools.product(range(spec.num_cores), repeat=2):
            assignment = defaultdict(list)
            for name, core in zip(names, placement):
                assignment[core].append(name)
            busy = sorted(assignment)
            for choice in itertools.product(
                *(range(spec.pstate_counts[core]) for core in busy)
            ):
                watts, _ = evaluator.machine_metrics(
                    0,
                    {core: tuple(sorted(assignment[core])) for core in busy},
                    dict(zip(busy, choice)),
                )
                all_levels.append(watts)
                if not any(choice):
                    nominal_levels.append(watts)
        # A budget below every all-nominal placement but above the
        # global minimum leaves lowered P-states as the only way in.
        assert min(all_levels) < min(nominal_levels)
        budget = (min(all_levels) + min(nominal_levels)) / 2.0
        tight = solve_assignment(
            AssignmentRequest(
                processes=names,
                objective="throughput-under-watts-budget",
                solver="exhaustive",
                fleet=fleet,
                power_budget_watts=budget,
            ),
            suite,
            power_model,
        )
        assert tight.predicted_watts <= budget
        busy = [m for m in tight.machines if m.assignment]
        assert any(
            pstate > 0 for m in busy for pstate in (m.pstates or {}).values()
        )
