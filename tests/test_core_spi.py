"""Unit tests for the Eq. 3 SPI model and its fit."""

import numpy as np
import pytest

from repro.core.spi import SpiModel, fit_spi_model
from repro.errors import ConfigurationError, ProfilingError


class TestSpiModel:
    def test_linear_relation(self):
        model = SpiModel(alpha=2e-8, beta=1e-9)
        assert model.spi(0.0) == pytest.approx(1e-9)
        assert model.spi(0.5) == pytest.approx(1.1e-8)

    def test_inversion(self):
        model = SpiModel(alpha=2e-8, beta=1e-9)
        spi = model.spi(0.37)
        assert model.mpa_for_spi(spi) == pytest.approx(0.37)

    def test_inversion_clamped(self):
        model = SpiModel(alpha=1e-8, beta=1e-9)
        assert model.mpa_for_spi(0.0) == 0.0
        assert model.mpa_for_spi(1.0) == 1.0

    def test_inversion_requires_slope(self):
        model = SpiModel(alpha=0.0, beta=1e-9)
        with pytest.raises(ConfigurationError):
            model.mpa_for_spi(1e-9)

    def test_rejects_unphysical(self):
        with pytest.raises(ConfigurationError):
            SpiModel(alpha=-1.0, beta=1e-9)
        with pytest.raises(ConfigurationError):
            SpiModel(alpha=1e-8, beta=0.0)

    def test_rejects_mpa_out_of_range(self):
        with pytest.raises(ConfigurationError):
            SpiModel(alpha=1e-8, beta=1e-9).spi(1.5)


class TestFit:
    def test_exact_recovery(self):
        alpha, beta = 3.3e-8, 2.1e-9
        mpas = np.linspace(0.05, 0.9, 10)
        spis = alpha * mpas + beta
        model = fit_spi_model(mpas, spis)
        assert model.alpha == pytest.approx(alpha, rel=1e-9)
        assert model.beta == pytest.approx(beta, rel=1e-9)
        assert model.r_squared == pytest.approx(1.0)

    def test_noisy_recovery(self):
        rng = np.random.default_rng(0)
        alpha, beta = 5e-8, 2e-9
        mpas = np.linspace(0.1, 0.8, 16)
        spis = alpha * mpas + beta
        spis = spis * (1 + rng.normal(0, 0.01, mpas.size))
        model = fit_spi_model(mpas, spis)
        assert model.alpha == pytest.approx(alpha, rel=0.1)
        assert model.r_squared > 0.98

    def test_degenerate_mpa_range(self):
        model = fit_spi_model([0.3, 0.3, 0.3], [1e-9, 1.1e-9, 0.9e-9])
        assert model.alpha == 0.0
        assert model.beta == pytest.approx(1e-9)

    def test_requires_two_points(self):
        with pytest.raises(ProfilingError):
            fit_spi_model([0.5], [1e-9])

    def test_unphysical_fit_rejected(self):
        # Negative slope: SPI decreasing with MPA is broken profiling.
        with pytest.raises(ProfilingError):
            fit_spi_model([0.1, 0.9], [2e-9, 1e-9])

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            fit_spi_model([0.1, 0.2], [1e-9])
