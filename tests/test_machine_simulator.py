"""Integration-grade tests for the closed-loop machine simulator."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.machine.simulator import MachineSimulation
from repro.workloads.spec import BENCHMARKS
from repro.workloads.stressmark import make_stressmark

from conftest import run_pair


class TestAccessMode:
    def test_budgets_met(self, small_server, tiny_scale):
        result = run_pair(small_server, tiny_scale, "mcf", "art")
        for process in result.processes:
            assert process.l2_refs >= tiny_scale.measure_accesses

    def test_occupancies_fill_contended_cache(self, small_server, tiny_scale):
        result = run_pair(small_server, tiny_scale, "mcf", "art")
        total = sum(p.occupancy_ways for p in result.processes)
        assert total == pytest.approx(16.0, abs=0.2)

    def test_contention_raises_miss_rate(self, small_server, tiny_scale):
        solo = MachineSimulation(
            small_server, {0: [BENCHMARKS["mcf"]]}, scale=tiny_scale, seed=2
        ).run_accesses()
        pair = run_pair(small_server, tiny_scale, "mcf", "art", seed=2)
        assert pair.processes[0].mpa > solo.processes[0].mpa + 0.05

    def test_spi_respects_eq3(self, small_server, tiny_scale):
        result = run_pair(small_server, tiny_scale, "mcf", "art")
        process = result.processes[0]
        benchmark = BENCHMARKS["mcf"]
        expected = benchmark.spi(process.mpa, small_server.frequency_hz)
        assert process.spi == pytest.approx(expected, rel=1e-6)

    def test_separate_domains_do_not_contend(self, small_server, tiny_scale):
        # Cores 0 and 2 are on different dies: no shared cache.
        sim = MachineSimulation(
            small_server,
            {0: [BENCHMARKS["mcf"]], 2: [BENCHMARKS["art"]]},
            scale=tiny_scale,
            seed=3,
        )
        result = sim.run_accesses()
        solo = MachineSimulation(
            small_server, {0: [BENCHMARKS["mcf"]]}, scale=tiny_scale, seed=3
        ).run_accesses()
        assert result.processes[0].mpa == pytest.approx(
            solo.processes[0].mpa, abs=0.03
        )

    def test_stressmark_pins_occupancy(self, small_server, tiny_scale):
        sim = MachineSimulation(
            small_server,
            {0: [BENCHMARKS["vpr"]], 1: [make_stressmark(10)]},
            scale=tiny_scale,
            seed=4,
        )
        result = sim.run_accesses()
        stress = next(p for p in result.processes if "stressmark" in p.name)
        assert stress.occupancy_ways == pytest.approx(10.0, abs=0.3)

    def test_deterministic_given_seed(self, small_server, tiny_scale):
        a = run_pair(small_server, tiny_scale, "mcf", "gzip", seed=9)
        b = run_pair(small_server, tiny_scale, "mcf", "gzip", seed=9)
        assert a.processes[0].mpa == b.processes[0].mpa
        assert a.processes[0].spi == b.processes[0].spi

    def test_empty_assignment_rejected(self, small_server, tiny_scale):
        sim = MachineSimulation(small_server, {}, scale=tiny_scale)
        with pytest.raises(SimulationError):
            sim.run_accesses()

    def test_core_out_of_range(self, small_server, tiny_scale):
        with pytest.raises(ConfigurationError):
            MachineSimulation(
                small_server, {9: [BENCHMARKS["mcf"]]}, scale=tiny_scale
            )


class TestDurationMode:
    def test_power_trace_collected(self, small_server, tiny_scale, power_env):
        sim = MachineSimulation(
            small_server,
            {0: [BENCHMARKS["mcf"]]},
            scale=tiny_scale,
            seed=5,
            power_env=power_env,
        )
        result = sim.run_duration()
        expected_windows = int(tiny_scale.measure_s / tiny_scale.hpc_period_s)
        assert len(result.power) == expected_windows
        assert result.power.mean_measured > 0

    def test_hpc_samples_cover_all_cores(self, small_server, tiny_scale, power_env):
        sim = MachineSimulation(
            small_server,
            {0: [BENCHMARKS["gzip"]]},
            scale=tiny_scale,
            power_env=power_env,
        )
        result = sim.run_duration()
        assert set(result.hpc_by_core) == {0, 1, 2, 3}
        # Idle cores report zero rates.
        for sample in result.hpc_by_core[3]:
            assert all(rate == 0.0 for rate in sample.rates.values())

    def test_idle_machine_reports_idle_power(self, small_server, tiny_scale, power_env):
        sim = MachineSimulation(
            small_server, {}, scale=tiny_scale, power_env=power_env
        )
        result = sim.run_duration()
        expected = power_env.reference.idle_processor_power(4)
        assert result.power.mean_measured == pytest.approx(expected, rel=0.1)

    def test_busier_machine_uses_more_power(self, small_server, tiny_scale, power_env):
        idle = MachineSimulation(
            small_server, {}, scale=tiny_scale, power_env=power_env
        ).run_duration()
        busy = MachineSimulation(
            small_server,
            {c: [BENCHMARKS["gzip"]] for c in range(4)},
            scale=tiny_scale,
            seed=6,
            power_env=power_env,
        ).run_duration()
        assert busy.power.mean_true > idle.power.mean_true + 5.0

    def test_time_sharing_counts_switches(self, small_server, tiny_scale, power_env):
        sim = MachineSimulation(
            small_server,
            {0: [BENCHMARKS["gzip"], BENCHMARKS["mcf"]]},
            scale=tiny_scale,
            seed=7,
            power_env=power_env,
        )
        result = sim.run_duration()
        assert result.context_switches > 2

    def test_collect_power_requires_env(self, small_server, tiny_scale):
        sim = MachineSimulation(
            small_server, {0: [BENCHMARKS["gzip"]]}, scale=tiny_scale
        )
        with pytest.raises(ConfigurationError):
            sim.run_duration(collect_power=True)


class TestHooksAndOptions:
    def test_access_hook_called(self, small_server, tiny_scale):
        seen = []
        sim = MachineSimulation(
            small_server,
            {0: [BENCHMARKS["gzip"]]},
            scale=tiny_scale,
            seed=8,
            access_hook=lambda t, pid, hit: seen.append((t, pid, hit)),
        )
        sim.run_accesses()
        assert len(seen) > tiny_scale.measure_accesses
        assert all(pid == 0 for _, pid, _ in seen)

    def test_alternate_policy_runs(self, small_server, tiny_scale):
        result = run_pair(
            small_server, tiny_scale, "mcf", "art", policy="tree-plru"
        )
        assert result.processes[0].l2_refs > 0

    def test_unknown_prefetcher_rejected(self, small_server, tiny_scale):
        with pytest.raises(ConfigurationError):
            MachineSimulation(
                small_server,
                {0: [BENCHMARKS["gzip"]]},
                scale=tiny_scale,
                prefetch="psychic",
            )

    def test_prefetcher_attached_per_domain(self, small_server, tiny_scale):
        sim = MachineSimulation(
            small_server,
            {0: [BENCHMARKS["equake"]]},
            scale=tiny_scale,
            prefetch="stride",
        )
        sim.run_accesses()
        assert sim.prefetchers is not None
        assert sim.prefetchers[0].stats.issued > 0

    def test_result_lookup_by_pid(self, small_server, tiny_scale):
        result = run_pair(small_server, tiny_scale, "mcf", "gzip")
        assert result.process_by_pid(1).name == "gzip"
        with pytest.raises(KeyError):
            result.process_by_pid(99)
