"""Unit tests for the power-aware assignment searchers."""

import numpy as np
import pytest

from repro.core.assignment import (
    OBJECTIVES,
    exhaustive_assignment,
    greedy_assignment,
)
from repro.core.combined import CombinedModel
from repro.core.feature import FeatureVector, ProfileVector
from repro.core.performance_model import PerformanceModel
from repro.core.power_model import CorePowerModel, PowerTrainingSet
from repro.errors import ConfigurationError
from repro.events import RATE_EVENTS
from repro.machine.topology import four_core_server
from repro.workloads.spec import BENCHMARKS

FREQ = 2e8


@pytest.fixture(scope="module")
def combined():
    rng = np.random.default_rng(1)
    training = PowerTrainingSet()
    for _ in range(60):
        rates = {event: rng.uniform(0, 1e8) for event in RATE_EVENTS}
        power = 10.0 + sum(1e-7 * r for r in rates.values())
        training.add(rates, power)
    power_model = CorePowerModel().fit(training)
    perf = PerformanceModel(ways=16)
    profiles = {}
    for name in ("mcf", "art", "gzip"):
        benchmark = BENCHMARKS[name]
        perf.register(FeatureVector.oracle(benchmark, FREQ))
        profiles[name] = ProfileVector(
            name=name,
            p_alone=25.0,
            l1rpi=benchmark.mix.l1rpi,
            l2rpi=benchmark.mix.l2rpi,
            brpi=benchmark.mix.brpi,
            fppi=benchmark.mix.fppi,
        )
    return CombinedModel(
        topology=four_core_server(sets=64),
        performance_models=[perf],
        power_model=power_model,
        profiles=profiles,
    )


class TestExhaustive:
    def test_finds_valid_assignment(self, combined):
        decision = exhaustive_assignment(combined, ["mcf", "art"], objective="power")
        placed = [n for names in decision.assignment.values() for n in names]
        assert sorted(placed) == ["art", "mcf"]
        assert decision.predicted_watts > 0
        assert decision.candidates_evaluated > 1

    def test_throughput_objective_separates_contenders(self, combined):
        decision = exhaustive_assignment(
            combined, ["mcf", "art"], objective="throughput"
        )
        cores = sorted(decision.assignment)
        # Best throughput puts the two memory hogs on different dies.
        domains = {0: 0, 1: 0, 2: 1, 3: 1}
        used_domains = {domains[c] for c in cores}
        assert used_domains == {0, 1}

    def test_max_per_core_respected(self, combined):
        decision = exhaustive_assignment(
            combined, ["mcf", "art", "gzip"], objective="power", max_per_core=1
        )
        assert all(len(names) == 1 for names in decision.assignment.values())

    def test_infeasible_constraints_raise(self, combined):
        with pytest.raises(ConfigurationError):
            exhaustive_assignment(
                combined, ["mcf"] * 5, objective="power", max_per_core=1
            )

    def test_unknown_objective(self, combined):
        with pytest.raises(ConfigurationError):
            exhaustive_assignment(combined, ["mcf"], objective="vibes")

    def test_empty_processes(self, combined):
        with pytest.raises(ConfigurationError):
            exhaustive_assignment(combined, [])

    def test_energy_objective(self, combined):
        decision = exhaustive_assignment(
            combined, ["mcf", "gzip"], objective="energy_per_instruction"
        )
        assert decision.score == pytest.approx(
            decision.predicted_watts / decision.predicted_ips
        )


class TestGreedy:
    def test_greedy_close_to_exhaustive(self, combined):
        processes = ["mcf", "art", "gzip"]
        best = exhaustive_assignment(combined, processes, objective="power")
        greedy = greedy_assignment(combined, processes, objective="power")
        assert greedy.predicted_watts <= best.predicted_watts * 1.15

    def test_greedy_evaluates_linearly(self, combined):
        decision = greedy_assignment(combined, ["mcf", "art"], objective="power")
        # k processes x N cores queries.
        assert decision.candidates_evaluated == 2 * 4

    def test_greedy_respects_cap(self, combined):
        decision = greedy_assignment(
            combined, ["mcf", "art", "gzip"], objective="power", max_per_core=1
        )
        assert all(len(names) == 1 for names in decision.assignment.values())


class TestObjectives:
    def test_registry(self):
        assert set(OBJECTIVES) == {"power", "throughput", "energy_per_instruction"}
        assert OBJECTIVES["power"](10.0, 5.0) == 10.0
        assert OBJECTIVES["throughput"](10.0, 5.0) == -5.0
        assert OBJECTIVES["energy_per_instruction"](10.0, 0.0) == float("inf")
