"""Tests for the automated profiling pipeline (Section 3.4).

These are the reproduction's key closed-loop checks: profiling a
process through stressmark co-runs must recover the parameters that
define it, using only observable quantities.
"""

import pytest

from repro.config import SimulationScale
from repro.errors import ProfilingError
from repro.machine.simulator import PowerEnvironment
from repro.machine.topology import four_core_server
from repro.profiling.characterize import measure_alone, measure_with_stressmark
from repro.profiling.profiler import profile_process
from repro.workloads.spec import BENCHMARKS

SCALE = SimulationScale(
    warmup_accesses=2_500,
    measure_accesses=8_000,
    warmup_s=0.004,
    measure_s=0.012,
    hpc_period_s=0.001,
    timeslice_s=0.0008,
)


@pytest.fixture(scope="module")
def topology():
    return four_core_server(sets=64)


@pytest.fixture(scope="module")
def mcf_profile(topology):
    return profile_process(BENCHMARKS["mcf"], topology, scale=SCALE, seed=17)


class TestMeasureAlone:
    def test_recovers_instruction_rates(self, topology):
        alone = measure_alone(BENCHMARKS["twolf"], topology, SCALE, seed=3)
        mix = BENCHMARKS["twolf"].mix
        assert alone.api == pytest.approx(mix.api, rel=1e-6)
        assert alone.l1rpi == pytest.approx(mix.l1rpi, rel=1e-6)
        assert alone.brpi == pytest.approx(mix.brpi, rel=1e-6)
        assert alone.fppi == pytest.approx(mix.fppi, abs=1e-9)

    def test_solo_mpa_reflects_full_cache(self, topology):
        alone = measure_alone(BENCHMARKS["gzip"], topology, SCALE, seed=3)
        target = BENCHMARKS["gzip"].intrinsic_histogram().mpa(16)
        assert alone.mpa == pytest.approx(target, abs=0.03)


class TestStressmarkSweep:
    def test_smaller_allocation_more_misses(self, topology):
        tight = measure_with_stressmark(
            BENCHMARKS["twolf"], topology, stress_ways=14, scale=SCALE, seed=5
        )
        loose = measure_with_stressmark(
            BENCHMARKS["twolf"], topology, stress_ways=4, scale=SCALE, seed=5
        )
        assert tight.target_size == 2
        assert loose.target_size == 12
        assert tight.mpa > loose.mpa

    def test_measured_mpa_matches_truth_at_size(self, topology):
        point = measure_with_stressmark(
            BENCHMARKS["twolf"], topology, stress_ways=8, scale=SCALE, seed=5
        )
        truth = BENCHMARKS["twolf"].intrinsic_histogram().mpa(8)
        assert point.mpa == pytest.approx(truth, abs=0.06)


class TestProfileProcess:
    def test_alpha_beta_recovered(self, topology, mcf_profile):
        alpha, beta = BENCHMARKS["mcf"].alpha_beta(topology.frequency_hz)
        assert mcf_profile.feature.alpha == pytest.approx(alpha, rel=0.05)
        assert mcf_profile.feature.beta == pytest.approx(beta, rel=0.25)
        assert mcf_profile.spi_fit_r2 > 0.99

    def test_histogram_mpa_recovered(self, topology, mcf_profile):
        truth = BENCHMARKS["mcf"].intrinsic_histogram()
        recovered = mcf_profile.feature.histogram
        for size in (2, 6, 10, 14):
            assert recovered.mpa(size) == pytest.approx(truth.mpa(size), abs=0.08)

    def test_sweep_covers_all_sizes(self, mcf_profile):
        sizes = [p.target_size for p in mcf_profile.sweep]
        assert sizes == list(range(1, 16))

    def test_profile_vector_rates(self, mcf_profile):
        mix = BENCHMARKS["mcf"].mix
        assert mcf_profile.profile.l2rpi == pytest.approx(mix.l2rpi, rel=1e-6)
        assert mcf_profile.profile.p_alone == 0.0  # no power env supplied

    def test_bad_sweep_ways_rejected(self, topology):
        with pytest.raises(ProfilingError):
            profile_process(
                BENCHMARKS["gzip"],
                topology,
                scale=SCALE,
                sweep_ways=[0, 1],
            )

    def test_p_alone_measured_with_power_env(self, topology):
        env = PowerEnvironment.for_topology(topology, seed=8)
        profile = profile_process(
            BENCHMARKS["gzip"],
            topology,
            scale=SCALE,
            seed=21,
            power_env=env,
            sweep_ways=[12, 8, 4],
        )
        # A busy core must draw more than an idle one, and stay well
        # below the whole-processor nominal power.
        idle_share = env.reference.idle_processor_power(4) / 4
        assert profile.profile.p_alone > idle_share
        assert profile.profile.p_alone < topology.nominal_power_watts
