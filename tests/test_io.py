"""Unit tests for JSON persistence of profiles and models."""

import numpy as np
import pytest

from repro.core.feature import FeatureVector, ProfileVector
from repro.core.power_model import CorePowerModel, PowerTrainingSet
from repro.errors import ConfigurationError
from repro.events import Event, RATE_EVENTS
from repro.io import (
    feature_from_dict,
    feature_to_dict,
    load_feature,
    load_power_model,
    load_profile_suite,
    power_model_from_dict,
    power_model_to_dict,
    profile_from_dict,
    profile_to_dict,
    save_feature,
    save_power_model,
    save_profile_suite,
)
from repro.workloads.spec import BENCHMARKS


@pytest.fixture
def feature():
    return FeatureVector.oracle(BENCHMARKS["mcf"], 2e8)


@pytest.fixture
def profile():
    return ProfileVector(
        name="mcf", p_alone=23.5, l1rpi=0.42, l2rpi=0.055, brpi=0.19, fppi=0.0
    )


@pytest.fixture
def power_model():
    rng = np.random.default_rng(0)
    training = PowerTrainingSet()
    ranges = {
        Event.L1_REFS: 1e8,
        Event.L2_REFS: 1.5e7,
        Event.L2_MISSES: 5e6,
        Event.BRANCHES: 5e7,
        Event.FP_OPS: 6e7,
    }
    for _ in range(40):
        rates = {event: rng.uniform(0, ranges[event]) for event in RATE_EVENTS}
        power = 11.0 + 8e-8 * rates[Event.L1_REFS] - 4e-7 * rates[Event.L2_MISSES]
        training.add(rates, power)
    return CorePowerModel().fit(training, idle_core_watts=11.0)


class TestFeatureRoundtrip:
    def test_dict_roundtrip(self, feature):
        recovered = feature_from_dict(feature_to_dict(feature))
        assert recovered.name == feature.name
        assert recovered.api == pytest.approx(feature.api)
        assert recovered.alpha == pytest.approx(feature.alpha)
        assert recovered.beta == pytest.approx(feature.beta)
        assert recovered.histogram.close_to(feature.histogram, atol=1e-12)

    def test_file_roundtrip(self, feature, tmp_path):
        path = tmp_path / "mcf.json"
        save_feature(feature, path)
        recovered = load_feature(path)
        assert recovered.histogram.mpa(8) == pytest.approx(feature.histogram.mpa(8))

    def test_wrong_kind_rejected(self, feature, profile):
        data = profile_to_dict(profile)
        with pytest.raises(ConfigurationError, match="expected kind"):
            feature_from_dict(data)

    def test_bad_version_rejected(self, feature):
        data = feature_to_dict(feature)
        data["version"] = 999
        with pytest.raises(ConfigurationError, match="version"):
            feature_from_dict(data)

    def test_missing_field_rejected(self, feature):
        data = feature_to_dict(feature)
        del data["api"]
        with pytest.raises(ConfigurationError, match="missing"):
            feature_from_dict(data)


class TestProfileRoundtrip:
    def test_dict_roundtrip(self, profile):
        recovered = profile_from_dict(profile_to_dict(profile))
        assert recovered == profile


class TestSuiteRoundtrip:
    def test_suite_roundtrip(self, feature, profile, tmp_path):
        path = tmp_path / "suite.json"
        save_profile_suite({"mcf": feature}, {"mcf": profile}, path)
        features, profiles = load_profile_suite(path)
        assert set(features) == {"mcf"}
        assert profiles["mcf"].p_alone == profile.p_alone

    def test_mismatched_names_rejected(self, feature, profile, tmp_path):
        with pytest.raises(ConfigurationError):
            save_profile_suite({"mcf": feature}, {}, tmp_path / "x.json")

    def test_loaded_features_usable_by_model(self, feature, profile, tmp_path):
        from repro.core.performance_model import PerformanceModel

        path = tmp_path / "suite.json"
        save_profile_suite({"mcf": feature}, {"mcf": profile}, path)
        features, _ = load_profile_suite(path)
        model = PerformanceModel(ways=16)
        model.register(features["mcf"])
        assert model.predict(["mcf", "mcf"]).total_size == pytest.approx(16, abs=0.1)


class TestPowerModelRoundtrip:
    def test_dict_roundtrip_exact(self, power_model):
        recovered = power_model_from_dict(power_model_to_dict(power_model))
        assert recovered.p_idle == pytest.approx(power_model.p_idle)
        for key, value in power_model.coefficients.items():
            assert recovered.coefficients[key] == pytest.approx(value, rel=1e-6)

    def test_predictions_preserved(self, power_model, tmp_path):
        path = tmp_path / "model.json"
        save_power_model(power_model, path)
        recovered = load_power_model(path)
        rates = {event: 1e6 for event in RATE_EVENTS}
        assert recovered.core_power(rates) == pytest.approx(
            power_model.core_power(rates), rel=1e-6
        )
