"""Unit tests for JSON persistence of profiles and models."""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import AssignmentDecision
from repro.core.equilibrium import EquilibriumResult, SolverTelemetry
from repro.core.feature import FeatureVector, ProfileVector
from repro.core.performance_model import CoRunPrediction, ProcessPrediction
from repro.core.power_model import CorePowerModel, PowerTrainingSet
from repro.errors import ConfigurationError
from repro.events import Event, RATE_EVENTS
from repro.io import (
    assignment_decision_from_dict,
    assignment_decision_to_dict,
    corun_prediction_from_dict,
    corun_prediction_to_dict,
    equilibrium_result_from_dict,
    equilibrium_result_to_dict,
    feature_from_dict,
    feature_to_dict,
    load_feature,
    load_json,
    load_power_model,
    load_profile_suite,
    power_model_from_dict,
    power_model_to_dict,
    profile_from_dict,
    profile_to_dict,
    sanitize_non_finite,
    save_feature,
    save_json,
    save_power_model,
    save_profile_suite,
    telemetry_from_dict,
    telemetry_to_dict,
)
from repro.workloads.spec import BENCHMARKS


@pytest.fixture
def feature():
    return FeatureVector.oracle(BENCHMARKS["mcf"], 2e8)


@pytest.fixture
def profile():
    return ProfileVector(
        name="mcf", p_alone=23.5, l1rpi=0.42, l2rpi=0.055, brpi=0.19, fppi=0.0
    )


@pytest.fixture
def power_model():
    rng = np.random.default_rng(0)
    training = PowerTrainingSet()
    ranges = {
        Event.L1_REFS: 1e8,
        Event.L2_REFS: 1.5e7,
        Event.L2_MISSES: 5e6,
        Event.BRANCHES: 5e7,
        Event.FP_OPS: 6e7,
    }
    for _ in range(40):
        rates = {event: rng.uniform(0, ranges[event]) for event in RATE_EVENTS}
        power = 11.0 + 8e-8 * rates[Event.L1_REFS] - 4e-7 * rates[Event.L2_MISSES]
        training.add(rates, power)
    return CorePowerModel().fit(training, idle_core_watts=11.0)


class TestFeatureRoundtrip:
    def test_dict_roundtrip(self, feature):
        recovered = feature_from_dict(feature_to_dict(feature))
        assert recovered.name == feature.name
        assert recovered.api == pytest.approx(feature.api)
        assert recovered.alpha == pytest.approx(feature.alpha)
        assert recovered.beta == pytest.approx(feature.beta)
        assert recovered.histogram.close_to(feature.histogram, atol=1e-12)

    def test_file_roundtrip(self, feature, tmp_path):
        path = tmp_path / "mcf.json"
        save_feature(feature, path)
        recovered = load_feature(path)
        assert recovered.histogram.mpa(8) == pytest.approx(feature.histogram.mpa(8))

    def test_wrong_kind_rejected(self, feature, profile):
        data = profile_to_dict(profile)
        with pytest.raises(ConfigurationError, match="expected kind"):
            feature_from_dict(data)

    def test_bad_version_rejected(self, feature):
        data = feature_to_dict(feature)
        data["version"] = 999
        with pytest.raises(ConfigurationError, match="version"):
            feature_from_dict(data)

    def test_missing_field_rejected(self, feature):
        data = feature_to_dict(feature)
        del data["api"]
        with pytest.raises(ConfigurationError, match="missing"):
            feature_from_dict(data)


class TestProfileRoundtrip:
    def test_dict_roundtrip(self, profile):
        recovered = profile_from_dict(profile_to_dict(profile))
        assert recovered == profile


class TestSuiteRoundtrip:
    def test_suite_roundtrip(self, feature, profile, tmp_path):
        path = tmp_path / "suite.json"
        save_profile_suite({"mcf": feature}, {"mcf": profile}, path)
        features, profiles = load_profile_suite(path)
        assert set(features) == {"mcf"}
        assert profiles["mcf"].p_alone == profile.p_alone

    def test_mismatched_names_rejected(self, feature, profile, tmp_path):
        with pytest.raises(ConfigurationError):
            save_profile_suite({"mcf": feature}, {}, tmp_path / "x.json")

    def test_loaded_features_usable_by_model(self, feature, profile, tmp_path):
        from repro.core.performance_model import PerformanceModel

        path = tmp_path / "suite.json"
        save_profile_suite({"mcf": feature}, {"mcf": profile}, path)
        features, _ = load_profile_suite(path)
        model = PerformanceModel(ways=16)
        model.register(features["mcf"])
        assert model.predict(["mcf", "mcf"]).total_size == pytest.approx(16, abs=0.1)


class TestPowerModelRoundtrip:
    def test_dict_roundtrip_exact(self, power_model):
        recovered = power_model_from_dict(power_model_to_dict(power_model))
        assert recovered.p_idle == power_model.p_idle
        assert recovered.coefficients == power_model.coefficients
        assert recovered.r_squared == power_model.r_squared

    def test_document_roundtrip_is_identity(self, power_model):
        doc = power_model_to_dict(power_model)
        assert power_model_to_dict(power_model_from_dict(doc)) == doc

    def test_predictions_preserved(self, power_model, tmp_path):
        path = tmp_path / "model.json"
        save_power_model(power_model, path)
        recovered = load_power_model(path)
        rates = {event: 1e6 for event in RATE_EVENTS}
        assert recovered.core_power(rates) == pytest.approx(
            power_model.core_power(rates), rel=1e-6
        )


# ----------------------------------------------------------------------
# Result-type round-trips
# ----------------------------------------------------------------------
finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
positive_floats = st.floats(
    min_value=1e-12, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def telemetries(draw):
    return SolverTelemetry(
        strategy=draw(st.sampled_from(["auto", "newton", "bisection"])),
        solver=draw(st.sampled_from(["newton", "bisection", "uncontended"])),
        jacobian=draw(st.sampled_from([None, "analytic", "fd"])),
        iterations=draw(st.integers(min_value=0, max_value=10_000)),
        residual_norm=draw(st.floats(min_value=0, max_value=1.0)),
        warm_started=draw(st.booleans()),
        fallback_reason=draw(st.one_of(st.none(), st.text(max_size=40))),
    )


@st.composite
def equilibrium_results(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    return EquilibriumResult(
        sizes=tuple(draw(positive_floats) for _ in range(n)),
        mpas=tuple(draw(st.floats(min_value=0, max_value=1)) for _ in range(n)),
        spis=tuple(draw(positive_floats) for _ in range(n)),
        solver=draw(st.sampled_from(["newton", "bisection", "uncontended"])),
        iterations=draw(st.integers(min_value=0, max_value=10_000)),
        contended=draw(st.booleans()),
        telemetry=draw(st.one_of(st.none(), telemetries())),
    )


@st.composite
def assignment_decisions(draw):
    cores = draw(st.lists(st.integers(0, 7), min_size=1, max_size=4, unique=True))
    names = st.sampled_from(sorted(BENCHMARKS))
    return AssignmentDecision(
        assignment={
            core: tuple(draw(st.lists(names, min_size=1, max_size=3)))
            for core in cores
        },
        predicted_watts=draw(positive_floats),
        predicted_ips=draw(positive_floats),
        objective=draw(st.sampled_from(["power", "throughput"])),
        score=draw(finite_floats),
        candidates_evaluated=draw(st.integers(min_value=1, max_value=10_000)),
    )


class TestResultRoundtrips:
    """to_dict -> json -> from_dict is the identity for result types."""

    @settings(max_examples=30, deadline=None)
    @given(telemetry=telemetries())
    def test_telemetry_property(self, telemetry):
        doc = json.loads(json.dumps(telemetry_to_dict(telemetry)))
        assert telemetry_from_dict(doc) == telemetry

    @settings(max_examples=30, deadline=None)
    @given(result=equilibrium_results())
    def test_equilibrium_result_property(self, result):
        doc = json.loads(json.dumps(equilibrium_result_to_dict(result)))
        assert equilibrium_result_from_dict(doc) == result

    @settings(max_examples=30, deadline=None)
    @given(decision=assignment_decisions())
    def test_assignment_decision_property(self, decision):
        doc = json.loads(json.dumps(assignment_decision_to_dict(decision)))
        assert assignment_decision_from_dict(doc) == decision

    def test_corun_prediction_roundtrip(self):
        prediction = CoRunPrediction(
            processes=(
                ProcessPrediction(
                    name="mcf", effective_size=5.0, mpa=0.7, spi=4e-8
                ),
                ProcessPrediction(
                    name="gzip", effective_size=3.0, mpa=0.2, spi=4e-9
                ),
            ),
            solver="newton",
            contended=True,
        )
        doc = json.loads(json.dumps(corun_prediction_to_dict(prediction)))
        assert corun_prediction_from_dict(doc) == prediction

    def test_methods_mirror_converters(self):
        telemetry = SolverTelemetry(
            strategy="auto", solver="newton", jacobian="analytic",
            iterations=4, residual_norm=1e-10,
        )
        assert SolverTelemetry.from_dict(telemetry.to_dict()) == telemetry
        prediction = ProcessPrediction(
            name="art", effective_size=2.0, mpa=0.5, spi=1e-8
        )
        assert ProcessPrediction.from_dict(prediction.to_dict()) == prediction

    def test_wrong_kind_rejected(self):
        telemetry = SolverTelemetry(
            strategy="auto", solver="newton", jacobian=None,
            iterations=1, residual_norm=0.0,
        )
        with pytest.raises(ConfigurationError, match="expected kind"):
            equilibrium_result_from_dict(telemetry_to_dict(telemetry))


class TestNonFiniteRejection:
    """save_json must never emit bare NaN/Infinity tokens (invalid JSON)."""

    def test_nan_rejected_with_key_path(self, tmp_path):
        doc = {"kind": "x", "nested": {"rows": [1.0, float("nan")]}}
        with pytest.raises(ConfigurationError, match=r"\$\.nested\.rows\[1\]"):
            save_json(doc, tmp_path / "bad.json")
        assert not (tmp_path / "bad.json").exists()

    @pytest.mark.parametrize("value", [float("inf"), float("-inf")])
    def test_infinities_rejected(self, value, tmp_path):
        with pytest.raises(ConfigurationError, match="non-finite"):
            save_json({"watts": value}, tmp_path / "bad.json")

    def test_numpy_scalars_checked(self, tmp_path):
        # np.float64 subclasses float, so the walk must catch it too.
        with pytest.raises(ConfigurationError, match="non-finite"):
            save_json({"v": float(np.float64("nan"))}, tmp_path / "bad.json")

    def test_finite_documents_unaffected(self, tmp_path):
        doc = {"a": 1.5, "b": [0.0, -2.25], "c": {"d": 1e308}, "e": "NaN-ish"}
        save_json(doc, tmp_path / "good.json")
        assert load_json(tmp_path / "good.json") == doc

    def test_saved_files_are_strict_json(self, tmp_path, feature):
        save_feature(feature, tmp_path / "f.json")
        json.loads(
            (tmp_path / "f.json").read_text(),
            parse_constant=lambda token: pytest.fail(
                f"non-strict JSON token {token!r} in saved file"
            ),
        )


class TestSanitizeNonFinite:
    def test_markers_substituted(self):
        doc = {
            "nan": float("nan"),
            "pos": float("inf"),
            "neg": float("-inf"),
            "fine": 3.5,
            "deep": [{"v": float("nan")}],
        }
        clean = sanitize_non_finite(doc)
        assert clean["nan"] == "NaN"
        assert clean["pos"] == "Infinity"
        assert clean["neg"] == "-Infinity"
        assert clean["fine"] == 3.5
        assert clean["deep"][0]["v"] == "NaN"

    def test_finite_data_untouched(self):
        doc = {"a": [1, 2.5, "x", None, True], "b": {"c": 0.0}}
        clean = sanitize_non_finite(doc)
        assert clean == {"a": [1, 2.5, "x", None, True], "b": {"c": 0.0}}

    def test_original_not_mutated(self):
        doc = {"v": float("nan")}
        sanitize_non_finite(doc)
        assert math.isnan(doc["v"])

    def test_sanitized_document_round_trips(self, tmp_path):
        doc = sanitize_non_finite({"v": float("nan"), "w": [float("inf")]})
        save_json(doc, tmp_path / "ok.json")
        assert load_json(tmp_path / "ok.json") == {"v": "NaN", "w": ["Infinity"]}
