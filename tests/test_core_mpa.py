"""Unit tests for MissRatioCurve and the Eq. 8 reconstruction."""

import pytest

from repro.core.histogram import ReuseDistanceHistogram
from repro.core.mpa import MissRatioCurve
from repro.errors import ConfigurationError, ProfilingError


class TestConstruction:
    def test_interpolation(self):
        curve = MissRatioCurve([1, 2, 4], [0.8, 0.6, 0.2])
        assert curve.mpa(3) == pytest.approx(0.4)

    def test_clamping_outside_range(self):
        curve = MissRatioCurve([1, 2], [0.8, 0.5])
        assert curve.mpa(0) == pytest.approx(0.8)
        assert curve.mpa(10) == pytest.approx(0.5)

    def test_monotone_clamp_applied(self):
        curve = MissRatioCurve([1, 2, 3], [0.5, 0.6, 0.3])
        assert curve.mpa(2) == pytest.approx(0.5)  # isotonic running min

    def test_non_monotone_rejected_when_strict(self):
        with pytest.raises(ProfilingError):
            MissRatioCurve([1, 2], [0.5, 0.6], enforce_monotone=False)

    def test_requires_increasing_sizes(self):
        with pytest.raises(ConfigurationError):
            MissRatioCurve([2, 1], [0.5, 0.6])

    def test_requires_two_points(self):
        with pytest.raises(ConfigurationError):
            MissRatioCurve([1], [0.5])

    def test_rejects_out_of_range_mpa(self):
        with pytest.raises(ConfigurationError):
            MissRatioCurve([1, 2], [1.5, 0.2])


class TestRoundTrip:
    """Histogram -> curve -> histogram must preserve MPA (Eq. 8)."""

    @pytest.mark.parametrize(
        "probs,inf_mass",
        [
            ([0.4, 0.3, 0.2, 0.1], 0.0),
            ([0.5, 0.2, 0.1], 0.2),
            ([0.1] * 10, 0.0),
        ],
    )
    def test_roundtrip_preserves_mpa(self, probs, inf_mass):
        original = ReuseDistanceHistogram(probs, inf_mass)
        curve = MissRatioCurve.from_histogram(original, max_size=16)
        recovered = curve.to_histogram()
        for size in range(1, 17):
            assert recovered.mpa(size) == pytest.approx(
                original.mpa(size), abs=1e-9
            )

    def test_roundtrip_recovers_exact_buckets(self):
        original = ReuseDistanceHistogram([0.4, 0.3, 0.2, 0.1])
        curve = MissRatioCurve.from_histogram(original, max_size=8)
        recovered = curve.to_histogram()
        assert recovered.close_to(original, atol=1e-9)

    def test_truncated_tail_becomes_inf_mass(self):
        original = ReuseDistanceHistogram([0.25, 0.25, 0.25, 0.25])
        # Sweep only reaches size 2: distances >= 2 are unobservable.
        curve = MissRatioCurve([0, 1, 2], [original.mpa(s) for s in range(3)])
        recovered = curve.to_histogram()
        assert recovered.inf_mass == pytest.approx(0.5)

    def test_narrow_sweep_rejected(self):
        curve = MissRatioCurve([1.0, 1.5], [0.5, 0.4])
        with pytest.raises(ProfilingError):
            curve.to_histogram()

    def test_total_mass_conserved(self):
        curve = MissRatioCurve([1, 2, 3, 4], [0.9, 0.5, 0.4, 0.15])
        hist = curve.to_histogram()
        assert float(hist.probs.sum()) + hist.inf_mass == pytest.approx(1.0)

    def test_points_returns_copies(self):
        curve = MissRatioCurve([1, 2], [0.5, 0.4])
        sizes, mpas = curve.points()
        sizes[0] = 99
        assert curve.sizes[0] == 1
