"""Tests for the on-line Eq. 3 recalibrator."""

import numpy as np
import pytest

from repro.core.online import OnlineSpiCalibrator, windows_to_observations
from repro.core.spi import SpiModel
from repro.errors import ConfigurationError


def make_observations(alpha, beta, n=200, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    mpas = rng.uniform(0.05, 0.95, n)
    spis = alpha * mpas + beta
    if noise:
        spis = spis * (1.0 + rng.normal(0, noise, n))
    return list(zip(mpas, spis))


class TestCalibration:
    def test_good_prior_stays_put(self):
        prior = SpiModel(alpha=4e-8, beta=2e-9)
        calibrator = OnlineSpiCalibrator(prior)
        calibrator.observe_many(make_observations(4e-8, 2e-9, noise=0.01))
        model = calibrator.model
        assert model.alpha == pytest.approx(4e-8, rel=0.05)
        assert model.beta == pytest.approx(2e-9, rel=0.15)

    def test_wrong_prior_converges_to_truth(self):
        prior = SpiModel(alpha=1e-8, beta=5e-9)  # badly off
        calibrator = OnlineSpiCalibrator(prior, prior_weight=20.0)
        calibrator.observe_many(make_observations(4e-8, 2e-9, n=500, noise=0.01))
        model = calibrator.model
        assert model.alpha == pytest.approx(4e-8, rel=0.1)
        assert model.beta == pytest.approx(2e-9, rel=0.3)

    def test_forgetting_tracks_drift(self):
        prior = SpiModel(alpha=4e-8, beta=2e-9)
        calibrator = OnlineSpiCalibrator(prior, forgetting=0.95)
        calibrator.observe_many(make_observations(4e-8, 2e-9, n=100))
        # Behaviour shifts: alpha doubles.
        calibrator.observe_many(make_observations(8e-8, 2e-9, n=400, seed=1))
        assert calibrator.model.alpha == pytest.approx(8e-8, rel=0.15)

    def test_drift_score_flags_change(self):
        prior = SpiModel(alpha=4e-8, beta=2e-9)
        stable = OnlineSpiCalibrator(prior, forgetting=1.0)
        stable.observe_many(make_observations(4e-8, 2e-9, n=64, noise=0.01))
        calm = stable.drift_score()
        shifted = OnlineSpiCalibrator(prior, forgetting=1.0, prior_weight=500.0)
        shifted.observe_many(make_observations(4e-8, 2e-9, n=32, noise=0.01))
        shifted.observe_many(make_observations(1.2e-7, 6e-9, n=32, noise=0.01, seed=2))
        assert shifted.drift_score() > calm

    def test_validation(self):
        prior = SpiModel(alpha=1e-8, beta=1e-9)
        with pytest.raises(ConfigurationError):
            OnlineSpiCalibrator(prior, prior_weight=0)
        with pytest.raises(ConfigurationError):
            OnlineSpiCalibrator(prior, forgetting=1.5)
        calibrator = OnlineSpiCalibrator(prior)
        with pytest.raises(ConfigurationError):
            calibrator.observe(1.5, 1e-9)
        with pytest.raises(ConfigurationError):
            calibrator.observe(0.5, 0.0)


class TestWindowExtraction:
    def test_extracts_from_simulated_run(self, small_server, tiny_scale, power_env):
        from repro.machine.simulator import MachineSimulation
        from repro.workloads.spec import BENCHMARKS

        sim = MachineSimulation(
            small_server,
            {0: [BENCHMARKS["mcf"]]},
            scale=tiny_scale,
            seed=4,
            power_env=power_env,
        )
        result = sim.run_duration()
        observations = windows_to_observations(result.hpc_by_core[0])
        assert len(observations) >= 5
        benchmark = BENCHMARKS["mcf"]
        for mpa, spi in observations:
            expected = benchmark.spi(mpa, small_server.frequency_hz)
            assert spi == pytest.approx(expected, rel=0.05)

    def test_idle_windows_skipped(self, small_server, tiny_scale, power_env):
        from repro.machine.simulator import MachineSimulation
        from repro.workloads.spec import BENCHMARKS

        sim = MachineSimulation(
            small_server,
            {0: [BENCHMARKS["gzip"]]},
            scale=tiny_scale,
            seed=4,
            power_env=power_env,
        )
        result = sim.run_duration()
        # Core 3 never ran anything: no observations.
        assert windows_to_observations(result.hpc_by_core[3]) == []

    def test_online_calibration_from_simulation(
        self, small_server, tiny_scale, power_env
    ):
        """End to end: runtime windows recover the true alpha/beta."""
        from repro.core.spi import SpiModel
        from repro.machine.simulator import MachineSimulation
        from repro.workloads.spec import BENCHMARKS

        benchmark = BENCHMARKS["mcf"]
        sim = MachineSimulation(
            small_server,
            {0: [benchmark], 1: [BENCHMARKS["art"]]},  # contention varies MPA
            scale=tiny_scale,
            seed=9,
            power_env=power_env,
        )
        result = sim.run_duration()
        observations = windows_to_observations(result.hpc_by_core[0])
        alpha_true, beta_true = benchmark.alpha_beta(small_server.frequency_hz)
        # Deliberately wrong prior; runtime data must pull the model in
        # *at the observed operating point*.  (Runtime windows cluster
        # around one MPA, so the full line is not identifiable — only
        # predictions near the cluster must be corrected.)
        calibrator = OnlineSpiCalibrator(
            SpiModel(alpha_true * 2, beta_true * 2),
            prior_weight=5.0,
            forgetting=0.98,
        )
        calibrator.observe_many(observations * 20)
        operating_mpa = float(
            sum(mpa for mpa, _ in observations) / len(observations)
        )
        assert calibrator.model.spi(operating_mpa) == pytest.approx(
            alpha_true * operating_mpa + beta_true, rel=0.05
        )
