"""Unit tests for program-phase detection."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.phases import Phase, detect_phases, longest_phase


class TestDetectPhases:
    def test_constant_series_single_phase(self):
        phases = detect_phases([1.0] * 50)
        assert len(phases) == 1
        assert phases[0].length == 50

    def test_step_change_detected(self):
        series = [0.0] * 40 + [10.0] * 60
        phases = detect_phases(series, window=4, threshold=0.3)
        assert len(phases) == 2
        assert phases[0].end == pytest.approx(40, abs=4)
        assert phases[1].mean == pytest.approx(10.0, abs=1.0)

    def test_phases_cover_series(self):
        rng = np.random.default_rng(0)
        series = np.concatenate(
            [rng.normal(0, 0.1, 30), rng.normal(5, 0.1, 50), rng.normal(1, 0.1, 20)]
        )
        phases = detect_phases(series, window=5, threshold=0.2)
        assert phases[0].start == 0
        assert phases[-1].end == 100
        for a, b in zip(phases, phases[1:]):
            assert a.end == b.start

    def test_noise_does_not_split(self):
        rng = np.random.default_rng(1)
        series = 5.0 + rng.normal(0, 0.05, 200)
        phases = detect_phases(series, window=8, threshold=0.25)
        assert len(phases) <= 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            detect_phases([])
        with pytest.raises(ConfigurationError):
            detect_phases([1.0], window=0)
        with pytest.raises(ConfigurationError):
            detect_phases([1.0], threshold=0)


class TestLongestPhase:
    def test_picks_longest(self):
        series = [0.0] * 20 + [10.0] * 70 + [0.0] * 10
        phase = longest_phase(series, window=4, threshold=0.3)
        assert phase.mean == pytest.approx(10.0, abs=1.5)
        assert phase.length >= 60

    def test_phase_dataclass(self):
        phase = Phase(start=3, end=10, mean=1.5)
        assert phase.length == 7
