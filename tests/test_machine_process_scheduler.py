"""Unit tests for Process accounting and the round-robin scheduler."""

import pytest

from repro.errors import ConfigurationError
from repro.machine.process import Process, ProcessCounters
from repro.machine.scheduler import CoreSchedule
from repro.workloads.spec import BENCHMARKS

FREQ = 2e8


def make_process(name="mcf", pid=0):
    return Process(
        pid=pid,
        workload=BENCHMARKS[name],
        core=0,
        frequency_hz=FREQ,
        seed=1,
        sets=16,
    )


class TestProcess:
    def test_quantum_durations(self):
        process = make_process()
        benchmark = BENCHMARKS["mcf"]
        hit_dt = process.execute_access(hit=True)
        miss_dt = process.execute_access(hit=False)
        assert hit_dt == pytest.approx(benchmark.base_cpi / (benchmark.api * FREQ))
        assert miss_dt - hit_dt == pytest.approx(benchmark.penalty_cycles / FREQ)

    def test_average_spi_matches_eq3(self):
        """Mechanistic execution must realise SPI = alpha*MPA + beta."""
        process = make_process("art")
        benchmark = BENCHMARKS["art"]
        mpa = 0.4
        n = 10_000
        for i in range(n):
            process.execute_access(hit=(i % 10) >= 4)  # 40% misses
        counters = process.counters
        alpha, beta = benchmark.alpha_beta(FREQ)
        assert counters.spi == pytest.approx(alpha * mpa + beta, rel=1e-9)
        assert counters.mpa == pytest.approx(mpa)

    def test_instruction_accounting(self):
        process = make_process("gzip")
        process.execute_access(hit=True)
        assert process.counters.instructions == pytest.approx(
            1.0 / BENCHMARKS["gzip"].api
        )

    def test_measurement_mark(self):
        process = make_process()
        process.execute_access(hit=True)
        process.mark_measurement_start()
        process.execute_access(hit=False)
        measured = process.measured()
        assert measured.l2_refs == 1
        assert measured.l2_misses == 1

    def test_charge_stall(self):
        process = make_process()
        process.execute_access(hit=True)
        before = process.counters.time_running
        process.charge_stall(1e-6)
        assert process.counters.time_running == pytest.approx(before + 1e-6)
        with pytest.raises(ConfigurationError):
            process.charge_stall(-1.0)

    def test_counters_delta(self):
        a = ProcessCounters(instructions=10, l2_refs=5, l2_misses=2, time_running=1.0)
        b = ProcessCounters(instructions=4, l2_refs=2, l2_misses=1, time_running=0.5)
        delta = a.delta_since(b)
        assert delta.instructions == 6
        assert delta.mpa == pytest.approx(1 / 3)

    def test_empty_counters_edge_cases(self):
        counters = ProcessCounters()
        assert counters.mpa == 0.0
        assert counters.spi == float("inf")


class TestCoreSchedule:
    def test_single_process_never_switches(self):
        schedule = CoreSchedule(0, [make_process()], timeslice_s=0.01, seed=1)
        for step in range(100):
            schedule.maybe_switch(step * 0.001)
        assert schedule.context_switches == 0

    def test_round_robin_rotation(self):
        processes = [make_process(pid=0), make_process("gzip", pid=1)]
        schedule = CoreSchedule(0, processes, timeslice_s=0.01, seed=1, jitter=0.0)
        seen = [schedule.current().pid]
        for step in range(1, 60):
            schedule.maybe_switch(step * 0.001)
            seen.append(schedule.current().pid)
        assert set(seen) == {0, 1}
        assert schedule.context_switches >= 4

    def test_switch_only_after_slice(self):
        processes = [make_process(pid=0), make_process("gzip", pid=1)]
        schedule = CoreSchedule(0, processes, timeslice_s=1.0, seed=1)
        assert schedule.maybe_switch(0.0001) is False

    def test_idle_core(self):
        schedule = CoreSchedule(0, [], timeslice_s=0.01)
        assert schedule.idle
        assert schedule.current() is None

    def test_slice_jitter_bounds(self):
        schedule = CoreSchedule(0, [make_process()], timeslice_s=0.01, seed=7, jitter=0.15)
        lengths = [schedule._slice_length() for _ in range(200)]
        assert all(0.0085 - 1e-12 <= s <= 0.0115 + 1e-12 for s in lengths)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CoreSchedule(0, [], timeslice_s=0)
        with pytest.raises(ConfigurationError):
            CoreSchedule(0, [], timeslice_s=0.01, jitter=1.5)
