"""Fast unit tests for experiment-layer aggregation logic.

These test the bookkeeping around the drivers (error aggregation,
scenario shaping, table rendering) with fabricated data — no
simulation involved.
"""

import pytest

from repro.analysis.errors import ErrorSummary
from repro.experiments.power_validation import (
    AssignmentValidation,
    ScenarioResult,
    render_power_table,
)
from repro.experiments.table1 import BenchmarkRow, PairCase, Table1Result
from repro.experiments.table4 import CombinedCase


def make_case(name, pair, measured_mpa, predicted_mpa, measured_spi, predicted_spi):
    return PairCase(
        pair=pair,
        name=name,
        measured_mpa=measured_mpa,
        predicted_mpa=predicted_mpa,
        measured_spi=measured_spi,
        predicted_spi=predicted_spi,
        measured_occupancy=8.0,
        predicted_occupancy=8.0,
    )


class TestTable1Aggregation:
    def test_case_errors(self):
        case = make_case("a", ("a", "b"), 0.50, 0.45, 1e-9, 1.1e-9)
        assert case.mpa_error_pct == pytest.approx(5.0)
        assert case.spi_error_pct == pytest.approx(10.0)

    def test_average_row(self):
        rows = [
            BenchmarkRow("a", 1.0, 0.0, 2.0, 0.0, cases=4),
            BenchmarkRow("b", 3.0, 50.0, 6.0, 25.0, cases=4),
        ]
        result = Table1Result(rows=rows, cases=[])
        average = result.average
        assert average.mpa_error_pct == pytest.approx(2.0)
        assert average.spi_error_pct == pytest.approx(4.0)
        assert average.spi_over_5pct == pytest.approx(12.5)
        assert average.cases == 8

    def test_render_contains_all_rows(self):
        rows = [BenchmarkRow("mcf", 1.0, 0.0, 2.0, 0.0, cases=8)]
        text = Table1Result(rows=rows, cases=[]).render()
        assert "mcf" in text
        assert "Avg." in text


class TestPowerValidationAggregation:
    def test_assignment_avg_error(self):
        validation = AssignmentValidation(
            assignment={0: ("mcf",)},
            sample_errors_pct=(1.0, 2.0, 3.0),
            measured_avg_watts=50.0,
            estimated_avg_watts=52.5,
        )
        assert validation.avg_error_pct == pytest.approx(5.0)

    def test_render_power_table_layout(self):
        scenario = ScenarioResult(
            label="1 proc./core",
            assignments=3,
            sample_error=ErrorSummary(count=30, mean=4.0, maximum=9.0, over_5pct=20.0),
            avg_error=ErrorSummary(count=3, mean=2.0, maximum=3.0, over_5pct=0.0),
            details=(),
        )
        text = render_power_table("Table X", [scenario])
        assert "1 proc./core" in text
        assert "4.00 / 9.00" in text
        assert "2.00 / 3.00" in text


class TestTable4Cases:
    def test_combined_case_error(self):
        case = CombinedCase(
            assignment={0: ("mcf",)}, estimated_watts=55.0, measured_watts=50.0
        )
        assert case.error_pct == pytest.approx(10.0)


class TestTable3Shapes:
    def test_unused_core_assignments_shapes(self):
        from repro.config import TEST_SCALE
        from repro.experiments.context import ExperimentContext
        from repro.experiments.table3 import unused_core_assignments

        context = ExperimentContext(
            sets=32,
            seed=1,
            benchmark_names=("gzip", "mcf"),
            profile_scale=TEST_SCALE,
            run_scale=TEST_SCALE,
        )
        assignments = unused_core_assignments(context, count=6)
        assert len(assignments) == 6
        for assignment in assignments:
            total = sum(len(names) for names in assignment.values())
            assert total == 4
            # 2 or 3 cores used, so 1 or 2 cores unused.
            assert len(assignment) in (2, 3)


class TestFigure2Selection:
    def test_trace_errors(self):
        from repro.experiments.figure2 import PowerTraceComparison

        panel = PowerTraceComparison(
            label="test",
            assignment={0: ("mcf",)},
            times_s=(0.1, 0.2),
            measured_watts=(50.0, 50.0),
            estimated_watts=(55.0, 45.0),
        )
        assert panel.avg_error_pct == pytest.approx(10.0)
        assert panel.mean_measured_watts == pytest.approx(50.0)
        assert "estimated" in panel.render()
