"""Unit tests for time-sharing power composition (Section 4.2)."""

import pytest

from repro.core.timesharing import (
    core_power_time_shared,
    core_set_power,
    process_combinations,
)
from repro.errors import ConfigurationError


class TestTimeShared:
    def test_equal_weights_mean(self):
        assert core_power_time_shared([10.0, 20.0]) == pytest.approx(15.0)

    def test_single_process(self):
        assert core_power_time_shared([12.5]) == 12.5

    def test_custom_weights(self):
        power = core_power_time_shared([10.0, 20.0], weights=[3.0, 1.0])
        assert power == pytest.approx(12.5)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            core_power_time_shared([])

    def test_rejects_negative_power(self):
        with pytest.raises(ConfigurationError):
            core_power_time_shared([-1.0])

    def test_rejects_weight_mismatch(self):
        with pytest.raises(ConfigurationError):
            core_power_time_shared([1.0], weights=[1.0, 2.0])

    def test_rejects_zero_weight_sum(self):
        with pytest.raises(ConfigurationError):
            core_power_time_shared([1.0, 2.0], weights=[0.0, 0.0])


class TestCombinations:
    def test_product_shape(self):
        combos = process_combinations([["a", "b"], ["x"], ["p", "q", "r"]])
        assert len(combos) == 6
        assert ("a", "x", "p") in combos
        assert ("b", "x", "r") in combos

    def test_single_core(self):
        assert process_combinations([["a", "b"]]) == (("a",), ("b",))

    def test_rejects_empty_core(self):
        with pytest.raises(ConfigurationError):
            process_combinations([["a"], []])

    def test_rejects_no_cores(self):
        with pytest.raises(ConfigurationError):
            process_combinations([])


class TestCoreSetPower:
    def test_eq10_average(self):
        """Eq. 10: mean over all cross-core combinations."""
        powers = {
            ("a", "x"): 10.0,
            ("a", "y"): 20.0,
            ("b", "x"): 30.0,
            ("b", "y"): 40.0,
        }
        value = core_set_power([["a", "b"], ["x", "y"]], powers.__getitem__)
        assert value == pytest.approx(25.0)

    def test_one_process_per_core(self):
        value = core_set_power([["a"], ["x"]], lambda combo: 42.0)
        assert value == 42.0

    def test_rejects_negative_combination_power(self):
        with pytest.raises(ConfigurationError):
            core_set_power([["a"]], lambda combo: -5.0)
