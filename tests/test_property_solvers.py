"""Property-based tests for the hardened equilibrium hot path.

Covers the three invariants the refactor leans on:

- Under contention both solvers satisfy the Eq. 1 capacity constraint
  ``sum(S_i) == A`` to 1e-9 and agree with each other.
- The vectorized kernels (``mpa_batch``, ``g_batch``,
  ``g_inverse_batch``) match their scalar counterparts element-wise.
- The analytic Jacobian matches the finite-difference one away from
  the kinks of the piecewise-linear tables (where FD straddles two
  segments and neither side is "the" derivative).
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.equilibrium import (
    BisectionSolver,
    EquilibriumProcess,
    NewtonSolver,
    _eq7_residual_norm,
)
from repro.core.histogram import ReuseDistanceHistogram
from repro.core.mpa import MissRatioCurve
from repro.core.occupancy import OccupancyModel
from repro.errors import ConvergenceError

WAYS = 12


@st.composite
def histograms(draw):
    size = draw(st.integers(min_value=1, max_value=20))
    weights = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=1.0),
            min_size=size,
            max_size=size,
        )
    )
    inf_mass = draw(st.floats(min_value=0.01, max_value=1.0))
    return ReuseDistanceHistogram(weights, inf_mass)


@st.composite
def equilibrium_processes(draw):
    """Random but physically sensible process inputs.

    The strictly positive infinity mass keeps MPA bounded away from
    zero, so every process's growth curve saturates at the full cache
    — any two of them contend.
    """
    hist = draw(histograms())
    api = draw(st.floats(min_value=0.005, max_value=0.1))
    penalty = draw(st.floats(min_value=50.0, max_value=300.0))
    base = draw(st.floats(min_value=0.3, max_value=1.5))
    frequency = 2e8
    return EquilibriumProcess(
        occupancy=OccupancyModel(hist, max_ways=WAYS),
        mpa=hist.mpa,
        api=api,
        alpha=api * penalty / frequency,
        beta=base / frequency,
    )


class TestCapacityInvariant:
    @given(st.lists(equilibrium_processes(), min_size=2, max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_bisection_sums_to_ways_exactly(self, processes):
        result = BisectionSolver().solve(processes, WAYS)
        assert result.contended
        assert abs(result.total_size - WAYS) <= 1e-9 * WAYS
        for process, size in zip(processes, result.sizes):
            assert size <= process.occupancy.saturation_size + 1e-9

    @given(st.lists(equilibrium_processes(), min_size=2, max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_newton_sums_to_ways_and_agrees_with_bisection(self, processes):
        try:
            newton = NewtonSolver().solve(processes, WAYS)
        except ConvergenceError:
            # Hairline contention can make Newton's strict interior
            # caps infeasible; auto falls back to bisection then.
            return
        assert newton.contended
        assert abs(newton.total_size - WAYS) <= 1e-9 * WAYS
        assert newton.telemetry is not None
        assert newton.telemetry.residual_norm < 1e-5
        bisection = BisectionSolver().solve(processes, WAYS)
        # Bisection stops on the total-size bracket, not the Eq. 7
        # residual, so on ill-conditioned (flat-residual) instances it
        # can halt away from the point Newton polishes to.  Compare
        # sizes only when bisection's own residual shows it actually
        # pinned the equilibrium; the residual check above is the
        # sharp statement that Newton solved the system.
        if bisection.telemetry.residual_norm >= 1e-3:
            return
        disagreement = max(
            abs(a - b) for a, b in zip(newton.sizes, bisection.sizes)
        )
        if disagreement <= 0.5:
            return
        # Eq. 7 admits multiple fixed points for some histograms.  When
        # both solvers certify a small residual at different size
        # vectors, demand a certificate that they sit in distinct
        # basins: the midpoint between two separate roots must have a
        # much larger residual (the curve humps between them).  A flat
        # residual through the midpoint would mean the two points are
        # the *same* valley and the solvers genuinely disagree.
        mid = [(a + b) / 2.0 for a, b in zip(newton.sizes, bisection.sizes)]
        worst = max(
            newton.telemetry.residual_norm, bisection.telemetry.residual_norm
        )
        assert _eq7_residual_norm(processes, mid, WAYS) > 100.0 * worst


class TestBatchScalarEquivalence:
    @given(
        histograms(),
        st.lists(
            st.floats(min_value=0.0, max_value=WAYS + 8.0),
            min_size=1,
            max_size=30,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_histogram_mpa_batch(self, hist, sizes):
        batch = hist.mpa_batch(sizes)
        for value, size in zip(batch, sizes):
            assert value == pytest.approx(hist.mpa(size), abs=1e-12)

    @given(
        histograms(),
        st.lists(
            st.floats(min_value=0.0, max_value=600.0),
            min_size=1,
            max_size=30,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_occupancy_g_batch(self, hist, counts):
        model = OccupancyModel(hist, max_ways=WAYS)
        batch = model.g_batch(counts)
        for value, n in zip(batch, counts):
            assert value == pytest.approx(model.g(n), abs=1e-9)

    @given(
        histograms(),
        st.lists(
            st.floats(min_value=0.0, max_value=WAYS + 2.0),
            min_size=1,
            max_size=30,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_occupancy_g_inverse_batch(self, hist, sizes):
        model = OccupancyModel(hist, max_ways=WAYS)
        batch = model.g_inverse_batch(sizes)
        for value, size in zip(batch, sizes):
            scalar = model.g_inverse(size)
            if math.isinf(scalar):
                assert math.isinf(value)
            else:
                assert value == pytest.approx(scalar, rel=1e-12, abs=1e-9)

    @given(
        histograms(),
        st.lists(
            st.floats(min_value=0.0, max_value=WAYS + 8.0),
            min_size=1,
            max_size=30,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_miss_ratio_curve_batch(self, hist, sizes):
        curve = MissRatioCurve.from_histogram(hist, WAYS)
        batch = curve.mpa_batch(sizes)
        for value, size in zip(batch, sizes):
            assert value == pytest.approx(curve.mpa(size), abs=1e-12)


def _away_from_kinks(process, size, margin):
    """True if FD steps around ``size`` stay inside one table segment.

    The MPA tail has kinks at integer sizes; G⁻¹ at the tabulated
    growth values.  At a kink the forward difference straddles two
    segments and legitimately disagrees with the one-sided analytic
    slope, so the comparison only samples interior points.
    """
    if abs(size - round(size)) < margin:
        return False
    growth = process.occupancy.growth_table
    idx = int(np.searchsorted(growth, size))
    for j in (idx - 1, idx, idx + 1):
        if 0 <= j < growth.size and abs(size - float(growth[j])) < margin:
            return False
    return True


class TestJacobianAgreement:
    @given(st.lists(equilibrium_processes(), min_size=2, max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_analytic_matches_fd(self, processes):
        solver = NewtonSolver()
        try:
            result = solver.solve(processes, WAYS)
        except ConvergenceError:
            return
        sizes = np.asarray(result.sizes)
        margin = solver.fd_step * 10
        assume(
            all(
                _away_from_kinks(p, s, margin)
                for p, s in zip(processes, sizes)
            )
        )
        analytic = solver.jacobian_analytic(processes, sizes, WAYS)
        fd = solver.jacobian_fd(processes, sizes, WAYS)
        assume(np.all(np.isfinite(analytic)) and np.all(np.isfinite(fd)))
        # Row 0 is the capacity constraint in both.
        assert np.allclose(analytic[0], 1.0)
        assert np.allclose(fd[0], 1.0, atol=1e-6)
        # jacobian_fd is a *forward* difference with h = 1e-4, so its
        # truncation error is O(h · curvature) in absolute terms; the
        # Eq. 7 rows are normalized ratios with O(1) entries, which
        # makes 1e-3 the honest absolute floor for near-zero entries.
        assert np.allclose(analytic, fd, rtol=5e-3, atol=1e-3)

    @given(st.lists(equilibrium_processes(), min_size=2, max_size=3))
    @settings(max_examples=15, deadline=None)
    def test_fd_mode_reaches_same_solution(self, processes):
        try:
            analytic = NewtonSolver(jacobian="analytic").solve(processes, WAYS)
            fd = NewtonSolver(jacobian="fd").solve(processes, WAYS)
        except ConvergenceError:
            return
        disagreement = max(
            abs(a - b) for a, b in zip(analytic.sizes, fd.sizes)
        )
        if disagreement > 0.5:
            # Distinct Eq. 7 fixed points: both modes converged (small
            # residuals), so demand the distinct-basin certificate —
            # the residual must hump between two separate roots.
            mid = [(a + b) / 2.0 for a, b in zip(analytic.sizes, fd.sizes)]
            worst = max(
                analytic.telemetry.residual_norm, fd.telemetry.residual_norm
            )
            assert _eq7_residual_norm(processes, mid, WAYS) > 100.0 * worst
            return
        for a, b in zip(analytic.sizes, fd.sizes):
            assert a == pytest.approx(b, abs=1e-4)
