"""End-to-end tests for the repro.api facade (quick scale)."""

import json

import pytest

import repro
from repro.api import (
    AssignmentPick,
    MixPrediction,
    PowerTrainingResult,
    ProfileSuiteResult,
    load_suite,
    predict_mix,
    profile_suite,
    train_power,
)
from repro.api import _pick_assignment_impl as pick_assignment
from repro.core.power_model import CorePowerModel
from repro.errors import ConfigurationError

MACHINE = "2-core-workstation"
SETS = 32
NAMES = ["mcf", "gzip"]


@pytest.fixture(scope="module")
def suite():
    return profile_suite(
        NAMES, machine=MACHINE, sets=SETS, seed=7, power=True, quick=True
    )


@pytest.fixture(scope="module")
def power(suite):
    return train_power(MACHINE, sets=SETS, seed=7, quick=True)


class TestProfileSuite:
    def test_covers_requested_names(self, suite):
        assert suite.names == ("gzip", "mcf")
        assert suite.machine == MACHINE
        assert set(suite.features) == set(suite.profiles) == set(NAMES)

    def test_power_profiles_carry_p_alone(self, suite):
        assert all(p.p_alone > 0 for p in suite.profiles.values())

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(ConfigurationError, match="unknown benchmark"):
            profile_suite(["linpack"], machine=MACHINE, quick=True)

    def test_rejects_unknown_machine(self):
        with pytest.raises(ConfigurationError, match="unknown machine"):
            profile_suite(NAMES, machine="cray-1", quick=True)

    def test_save_and_load(self, suite, tmp_path):
        path = tmp_path / "suite.json"
        suite.save(path)
        loaded = load_suite(path)
        assert loaded.machine == MACHINE
        assert loaded.to_dict() == suite.to_dict()


class TestPredictMix:
    def test_prediction_is_contended_and_fills_cache(self, suite):
        mix = predict_mix(NAMES, suite, ways=8)
        assert isinstance(mix, MixPrediction)
        assert mix.names == tuple(NAMES)
        assert mix.prediction.contended
        assert mix.prediction.total_size == pytest.approx(8.0, abs=1e-6)

    def test_accepts_saved_suite_path(self, suite, tmp_path):
        path = tmp_path / "suite.json"
        suite.save(path)
        mix = predict_mix(["mcf"], path, ways=8)
        assert mix.prediction.processes[0].name == "mcf"


class TestTrainPower:
    def test_model_is_fitted(self, power):
        assert isinstance(power, PowerTrainingResult)
        assert power.machine == MACHINE
        assert power.training_windows > 0
        assert 0.0 < power.r_squared <= 1.0
        assert power.model.p_idle > 0

    def test_save_is_loadable(self, power, tmp_path):
        from repro.io import load_power_model

        path = tmp_path / "power.json"
        power.save(path)
        assert isinstance(load_power_model(path), CorePowerModel)


class TestPickAssignment:
    def test_exhaustive_pick(self, suite, power):
        pick = pick_assignment(
            NAMES, suite, power.model, machine=MACHINE, sets=SETS
        )
        assert isinstance(pick, AssignmentPick)
        assert pick.strategy == "exhaustive"
        placed = [n for names in pick.assignment.values() for n in names]
        assert sorted(placed) == sorted(NAMES)
        assert pick.decision.predicted_watts > 0

    def test_greedy_matches_objective(self, suite, power):
        pick = pick_assignment(
            NAMES, suite, power.model, machine=MACHINE, sets=SETS,
            objective="throughput", greedy=True,
        )
        assert pick.strategy == "greedy"
        assert pick.decision.objective == "throughput"


class TestRoundTrips:
    """Every facade result type survives to_dict -> JSON -> from_dict."""

    def test_suite_round_trip(self, suite):
        doc = json.loads(json.dumps(suite.to_dict()))
        assert ProfileSuiteResult.from_dict(doc).to_dict() == suite.to_dict()

    def test_mix_round_trip(self, suite):
        mix = predict_mix(NAMES, suite, ways=8)
        doc = json.loads(json.dumps(mix.to_dict()))
        assert MixPrediction.from_dict(doc) == mix

    def test_power_round_trip(self, power):
        doc = json.loads(json.dumps(power.to_dict()))
        assert PowerTrainingResult.from_dict(doc).to_dict() == power.to_dict()

    def test_pick_round_trip(self, suite, power):
        pick = pick_assignment(
            NAMES, suite, power.model, machine=MACHINE, sets=SETS
        )
        doc = json.loads(json.dumps(pick.to_dict()))
        assert AssignmentPick.from_dict(doc) == pick


class TestSaveLoadHelpers:
    """Facade results persist with save() and restore bit-exactly."""

    def test_prediction_save_load(self, suite, tmp_path):
        from repro.api import load_prediction

        mix = predict_mix(NAMES, suite, ways=8)
        path = tmp_path / "mix.json"
        mix.save(path)
        assert load_prediction(path) == mix  # frozen dataclass: exact floats

    def test_pick_save_load(self, suite, power, tmp_path):
        from repro.api import load_pick

        pick = pick_assignment(
            NAMES, suite, power.model, machine=MACHINE, sets=SETS
        )
        path = tmp_path / "pick.json"
        pick.save(path)
        assert load_pick(path) == pick

    def test_load_helpers_reject_wrong_kind(self, suite, tmp_path):
        from repro.api import load_prediction

        path = tmp_path / "suite.json"
        suite.save(path)
        with pytest.raises(ConfigurationError, match="kind"):
            load_prediction(path)


class TestPackageSurface:
    def test_facade_reexported_from_package_root(self):
        for name in (
            "profile_suite", "predict_mix", "train_power", "pick_assignment",
            "load_suite", "load_prediction", "load_pick",
            "ProfileSuiteResult", "MixPrediction",
            "PowerTrainingResult", "AssignmentPick",
        ):
            assert name in repro.__all__
            assert hasattr(repro, name)
