"""Unit tests for the PerformanceModel façade."""

import pytest

from repro.core.feature import FeatureVector
from repro.core.performance_model import PerformanceModel
from repro.errors import ConfigurationError
from repro.workloads.spec import BENCHMARKS

FREQ = 2e8


@pytest.fixture
def model():
    model = PerformanceModel(ways=16)
    for name in ("mcf", "art", "gzip", "twolf"):
        model.register(FeatureVector.oracle(BENCHMARKS[name], FREQ))
    return model


class TestRegistration:
    def test_known_processes_sorted(self, model):
        assert model.known_processes == ["art", "gzip", "mcf", "twolf"]

    def test_unknown_process_raises(self, model):
        with pytest.raises(KeyError, match="no feature vector"):
            model.predict(["mcf", "nosuch"])

    def test_reregistration_replaces(self, model):
        replacement = FeatureVector.oracle(BENCHMARKS["vpr"], FREQ)
        renamed = FeatureVector(
            name="mcf",
            histogram=replacement.histogram,
            api=replacement.api,
            spi_model=replacement.spi_model,
        )
        model.register(renamed)
        assert model.feature("mcf").api == pytest.approx(BENCHMARKS["vpr"].api)


class TestPrediction:
    def test_solo_prediction_uncontended(self, model):
        solo = model.predict_solo("gzip")
        # gzip's footprint fits easily in 16 ways: low MPA.
        assert solo.mpa < 0.1
        assert solo.spi > 0

    def test_pair_prediction_capacity(self, model):
        prediction = model.predict(["mcf", "art"])
        assert prediction.contended
        assert prediction.total_size == pytest.approx(16.0, abs=0.05)

    def test_contention_raises_mpa(self, model):
        solo = model.predict_solo("mcf")
        pair = model.predict(["mcf", "art"])
        assert pair[0].mpa > solo.mpa

    def test_duplicate_names_symmetric(self, model):
        prediction = model.predict(["mcf", "mcf"])
        assert prediction[0].effective_size == pytest.approx(
            prediction[1].effective_size, abs=0.05
        )

    def test_l2mpr_equals_mpa(self, model):
        prediction = model.predict(["mcf", "gzip"])
        assert prediction[0].l2mpr == prediction[0].mpa

    def test_ips_is_inverse_spi(self, model):
        solo = model.predict_solo("twolf")
        assert solo.ips == pytest.approx(1.0 / solo.spi)

    def test_too_many_processes(self, model):
        with pytest.raises(ConfigurationError):
            model.predict(["mcf"] * 17)

    def test_empty_prediction(self, model):
        with pytest.raises(ConfigurationError):
            model.predict([])

    def test_len_and_getitem(self, model):
        prediction = model.predict(["mcf", "gzip"])
        assert len(prediction) == 2
        assert prediction[1].name == "gzip"


class TestStrategies:
    def test_explicit_strategies_agree(self):
        features = [
            FeatureVector.oracle(BENCHMARKS[name], FREQ) for name in ("mcf", "art")
        ]
        newton = PerformanceModel(ways=16, strategy="newton")
        bisect = PerformanceModel(ways=16, strategy="bisection")
        newton.register_all(features)
        bisect.register_all(features)
        a = newton.predict(["mcf", "art"])
        b = bisect.predict(["mcf", "art"])
        assert a[0].effective_size == pytest.approx(b[0].effective_size, abs=0.1)
