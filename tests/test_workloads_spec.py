"""Unit tests for the synthetic SPEC benchmark definitions."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.workloads.profiles import validate_profile
from repro.workloads.spec import (
    BENCHMARKS,
    PAPER_EIGHT,
    PAPER_TEN,
    SyntheticBenchmark,
    get_benchmark,
)


class TestRoster:
    def test_ten_benchmarks(self):
        assert len(BENCHMARKS) == 10
        assert set(PAPER_TEN) == set(BENCHMARKS)

    def test_paper_eight_subset(self):
        assert set(PAPER_EIGHT) <= set(PAPER_TEN)
        assert len(PAPER_EIGHT) == 8

    def test_all_profiles_valid(self):
        for benchmark in BENCHMARKS.values():
            validate_profile(benchmark.rd_profile)

    def test_lookup(self):
        assert get_benchmark("mcf").name == "mcf"

    def test_lookup_unknown(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            get_benchmark("linpack")

    def test_memory_vs_cpu_bound_diversity(self):
        """The suite must span the paper's spectrum of API values."""
        apis = [b.api for b in BENCHMARKS.values()]
        assert min(apis) < 0.01
        assert max(apis) > 0.05

    def test_fp_benchmarks_have_fp_mix(self):
        for name in ("art", "equake", "ammp"):
            assert BENCHMARKS[name].mix.fppi > 0
        for name in ("gzip", "vpr", "mcf"):
            assert BENCHMARKS[name].mix.fppi == 0

    def test_equake_is_streaming_sequential(self):
        assert BENCHMARKS["equake"].streaming_sequential is True
        others = [b for n, b in BENCHMARKS.items() if n != "equake"]
        assert all(not b.streaming_sequential for b in others)


class TestSpiParameters:
    def test_alpha_beta_scaling(self):
        benchmark = BENCHMARKS["mcf"]
        alpha1, beta1 = benchmark.alpha_beta(1e8)
        alpha2, beta2 = benchmark.alpha_beta(2e8)
        assert alpha1 == pytest.approx(2 * alpha2)
        assert beta1 == pytest.approx(2 * beta2)

    def test_spi_at_mpa_extremes(self):
        benchmark = BENCHMARKS["art"]
        alpha, beta = benchmark.alpha_beta(2e8)
        assert benchmark.spi(0.0, 2e8) == pytest.approx(beta)
        assert benchmark.spi(1.0, 2e8) == pytest.approx(alpha + beta)

    def test_spi_rejects_bad_mpa(self):
        with pytest.raises(ConfigurationError):
            BENCHMARKS["art"].spi(1.5, 2e8)

    def test_alpha_beta_rejects_bad_frequency(self):
        with pytest.raises(ConfigurationError):
            BENCHMARKS["art"].alpha_beta(0)

    def test_footprint_ways(self):
        for benchmark in BENCHMARKS.values():
            finite = [d for d, _ in benchmark.rd_profile if d != math.inf]
            assert benchmark.footprint_ways == int(max(finite)) + 1

    def test_solo_mpa_decreases_with_ways(self):
        benchmark = BENCHMARKS["twolf"]
        assert benchmark.solo_mpa(2) > benchmark.solo_mpa(12)

    def test_memory_bound_have_large_footprints(self):
        """mcf/art/ammp must overflow a 16-way cache to contend."""
        for name in ("mcf", "art", "ammp"):
            assert BENCHMARKS[name].footprint_ways > 16


class TestValidation:
    def test_rejects_bad_base_cpi(self):
        good = BENCHMARKS["gzip"]
        with pytest.raises(ConfigurationError):
            SyntheticBenchmark(
                name="bad",
                mix=good.mix,
                rd_profile=good.rd_profile,
                base_cpi=0.0,
                penalty_cycles=100.0,
            )

    def test_rejects_bad_penalty(self):
        good = BENCHMARKS["gzip"]
        with pytest.raises(ConfigurationError):
            SyntheticBenchmark(
                name="bad",
                mix=good.mix,
                rd_profile=good.rd_profile,
                base_cpi=1.0,
                penalty_cycles=0.0,
            )
