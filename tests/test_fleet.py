"""Tests for :mod:`repro.fleet` — declarative fleet assignment.

Four layers, pinned separately:

- **Types**: :class:`AssignmentRequest` / :class:`FleetAssignment`
  validation, bit-exact JSON round-trips, field-path error messages,
  and the :func:`pick_assignment` deprecation shim.
- **Oracle equality**: on small instances (≤ 4 cores, ≤ 6 processes)
  the greedy+anneal heuristic returns *exactly* the exhaustive
  oracle's score — property-tested with hypothesis.
- **Monotonicity**: annealing never returns a worse score than the
  greedy packing it refines, on fleets far beyond the sweep limit.
- **Determinism**: same seed ⇒ identical :class:`FleetAssignment`
  (dataclass equality, so float-for-float) across repeated runs and
  across ``engine="serial"`` vs ``engine="pool"``.
"""

import json
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    AssignmentRequest,
    FleetSpec,
    MachineGroup,
    ProfileSuiteResult,
    _pick_assignment_impl,
    pick_assignment,
    solve_assignment,
)
from repro.core.assignment import (
    DEFAULT_MAX_CANDIDATES,
    candidate_bound,
    check_enumeration_size,
)
from repro.core.feature import FeatureVector, ProfileVector
from repro.core.power_model import CorePowerModel, PowerTrainingSet
from repro.errors import AssignmentTooLargeError, ConfigurationError
from repro.events import Event, RATE_EVENTS
from repro.fleet import (
    CANONICAL_OBJECTIVES,
    canonical_objective,
    fleet_score,
)
from repro.io import (
    assignment_request_from_dict,
    assignment_request_to_dict,
    fleet_assignment_from_dict,
    fleet_assignment_to_dict,
    fleet_spec_from_dict,
)
from repro.workloads.spec import BENCHMARKS

NAMES = ["mcf", "gzip", "art", "vpr"]


def _oracle_suite(names=NAMES, machine="4-core-server"):
    return ProfileSuiteResult(
        machine=machine,
        features={n: FeatureVector.oracle(BENCHMARKS[n], 2e8) for n in names},
        profiles={
            n: ProfileVector(
                name=n,
                p_alone=20.0 + 2.0 * i,
                l1rpi=0.4,
                l2rpi=0.05,
                brpi=0.2,
                fppi=0.01 * i,
            )
            for i, n in enumerate(names)
        },
    )


@pytest.fixture(scope="module")
def suite():
    return _oracle_suite()


@pytest.fixture(scope="module")
def power_model():
    rng = np.random.default_rng(0)
    training = PowerTrainingSet()
    for _ in range(40):
        rates = {event: rng.uniform(0, 1e8) for event in RATE_EVENTS}
        power = 11.0 + 8e-8 * rates[Event.L1_REFS] + 2e-7 * rates[Event.L2_MISSES]
        training.add(rates, power)
    return CorePowerModel().fit(training, idle_core_watts=11.0)


# ----------------------------------------------------------------------
# Request / result types
# ----------------------------------------------------------------------
class TestAssignmentRequest:
    def test_defaults(self):
        request = AssignmentRequest(processes=("mcf", "gzip"))
        assert request.objective == "min-power"
        assert request.solver == "auto"
        assert request.fleet is None
        assert request.resolved_fleet().groups[0].machine == "4-core-server"

    def test_rejects_unknown_objective(self):
        with pytest.raises(ConfigurationError, match="objective"):
            AssignmentRequest(processes=("mcf",), objective="fastest")

    def test_rejects_unknown_solver(self):
        with pytest.raises(ConfigurationError, match="solver"):
            AssignmentRequest(processes=("mcf",), solver="brute")

    def test_rejects_empty_processes(self):
        with pytest.raises(ConfigurationError, match="process"):
            AssignmentRequest(processes=())

    def test_budget_objective_requires_budget(self):
        with pytest.raises(ConfigurationError, match="power_budget_watts"):
            AssignmentRequest(
                processes=("mcf",), objective="throughput-under-watts-budget"
            )

    def test_legacy_objective_aliases_canonicalised(self):
        assert canonical_objective("power") == "min-power"
        assert canonical_objective("throughput") == "max-throughput"
        assert (
            canonical_objective("energy_per_instruction")
            == "min-energy-per-instruction"
        )
        for name in CANONICAL_OBJECTIVES:
            assert canonical_objective(name) == name

    def test_request_accepts_legacy_aliases(self):
        # A request built with a legacy name validates and preserves
        # the caller's spelling; canonicalisation happens at solve.
        for legacy in ("power", "throughput", "energy_per_instruction"):
            request = AssignmentRequest(processes=("mcf",), objective=legacy)
            assert request.objective == legacy
            assert canonical_objective(request.objective) in CANONICAL_OBJECTIVES
        # Aliases survive the JSON round-trip unrewritten.
        request = AssignmentRequest(processes=("mcf",), objective="power")
        assert assignment_request_from_dict(
            assignment_request_to_dict(request)
        ) == request

    def test_hetero_field_path_in_errors(self):
        # The hetero subdocument reports the same dotted field paths
        # the rest of the fleet schema does.
        with pytest.raises(
            ConfigurationError,
            match=r"fleet\.groups\[0\]\.hetero\.core_types is missing",
        ):
            fleet_spec_from_dict(
                {
                    "kind": "fleet_spec",
                    "version": 1,
                    "groups": [
                        {
                            "machine": "4-core-server",
                            "hetero": {
                                "kind": "hetero_machine_spec",
                                "version": 1,
                                "machine": "4-core-server",
                            },
                        }
                    ],
                }
            )

    def test_round_trip_is_bit_exact(self):
        request = AssignmentRequest(
            processes=("mcf", "gzip", "mcf"),
            objective="throughput-under-watts-budget",
            solver="anneal",
            fleet=FleetSpec(
                groups=(
                    MachineGroup(machine="4-core-server", count=3, sets=64),
                    MachineGroup(
                        machine="2-core-laptop",
                        count=2,
                        power_cap_watts=35.5,
                    ),
                )
            ),
            power_budget_watts=123.456789,
            budget_s=1.5,
            max_iterations=777,
            seed=42,
        )
        wire = json.loads(json.dumps(assignment_request_to_dict(request)))
        assert assignment_request_from_dict(wire) == request

    def test_field_path_in_errors(self):
        with pytest.raises(
            ConfigurationError, match=r"assignment_request\.processes is missing"
        ):
            assignment_request_from_dict(
                {"kind": "assignment_request", "version": 1}
            )
        with pytest.raises(
            ConfigurationError,
            match=r"fleet\.groups\[0\]\.machine is missing",
        ):
            fleet_spec_from_dict(
                {"kind": "fleet_spec", "version": 1, "groups": [{}]}
            )

    def test_reexported_from_package_root(self):
        import repro

        assert repro.AssignmentRequest is AssignmentRequest
        assert repro.FleetSpec is FleetSpec
        assert repro.solve_assignment is solve_assignment


class TestFleetAssignmentResult:
    def test_round_trip_is_bit_exact(self, suite, power_model):
        request = AssignmentRequest(
            processes=("mcf", "gzip", "art"),
            machine="2-core-workstation",
            sets=32,
            solver="anneal",
            seed=3,
        )
        result = solve_assignment(request, suite, power_model)
        wire = json.loads(json.dumps(fleet_assignment_to_dict(result)))
        assert fleet_assignment_from_dict(wire) == result

    def test_save_and_load(self, tmp_path, suite, power_model):
        from repro.api import load_fleet_assignment

        request = AssignmentRequest(
            processes=("mcf", "gzip"), machine="2-core-workstation", sets=32
        )
        result = solve_assignment(request, suite, power_model)
        path = tmp_path / "fleet.json"
        result.save(path)
        assert load_fleet_assignment(path) == result

    def test_busy_machines_excludes_idle(self, suite, power_model):
        request = AssignmentRequest(
            processes=("mcf",),
            fleet=FleetSpec(
                groups=(
                    MachineGroup(machine="2-core-workstation", count=3, sets=32),
                )
            ),
            sets=32,
        )
        result = solve_assignment(request, suite, power_model)
        assert len(result.machines) == 3
        assert len(result.busy_machines) == 1


class TestDeprecationShim:
    def test_pick_assignment_warns_and_matches_impl(self, suite, power_model):
        with pytest.warns(DeprecationWarning, match="solve_assignment"):
            pick = pick_assignment(
                ["mcf", "gzip"],
                suite,
                power_model,
                machine="2-core-workstation",
                sets=32,
            )
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # the impl must NOT warn
            impl = _pick_assignment_impl(
                ["mcf", "gzip"],
                suite,
                power_model,
                machine="2-core-workstation",
                sets=32,
            )
        assert pick == impl


# ----------------------------------------------------------------------
# Solvers
# ----------------------------------------------------------------------
def _solve(suite, power_model, names, solver, **kwargs):
    request = AssignmentRequest(
        processes=tuple(names),
        machine=kwargs.pop("machine", "2-core-workstation"),
        sets=32,
        solver=solver,
        **kwargs,
    )
    return solve_assignment(request, suite, power_model)


class TestOracleEquality:
    @settings(max_examples=10, deadline=None)
    @given(
        names=st.lists(st.sampled_from(NAMES), min_size=1, max_size=4),
        objective=st.sampled_from(["min-power", "max-throughput"]),
    )
    def test_anneal_matches_exhaustive_on_small_instances(
        self, suite, power_model, names, objective
    ):
        oracle = _solve(suite, power_model, names, "exhaustive", objective=objective)
        heuristic = _solve(suite, power_model, names, "anneal", objective=objective)
        assert heuristic.score == oracle.score
        assert heuristic.predicted_watts == oracle.predicted_watts

    def test_pinned_four_core_six_process_equality(self, power_model):
        suite = _oracle_suite()
        names = ["mcf", "gzip", "art", "vpr", "mcf", "gzip"]
        oracle = _solve(
            suite, power_model, names, "exhaustive", machine="4-core-server"
        )
        heuristic = _solve(
            suite, power_model, names, "anneal", machine="4-core-server"
        )
        assert heuristic.score == oracle.score
        assert heuristic.refinement == "sweep"

    def test_auto_solver_uses_exhaustive_on_small_instances(
        self, suite, power_model
    ):
        result = _solve(suite, power_model, ["mcf", "gzip"], "auto")
        assert result.solver == "exhaustive"


class TestHeuristicMonotonicity:
    @pytest.fixture(scope="class")
    def big_fleet(self):
        return FleetSpec(
            groups=(
                MachineGroup(machine="4-core-server", count=6, sets=32),
                MachineGroup(machine="2-core-workstation", count=4, sets=32),
            )
        )

    def test_anneal_never_worse_than_greedy(self, suite, power_model, big_fleet):
        names = tuple(NAMES * 5)  # 20 processes, bound >> sweep limit
        greedy = solve_assignment(
            AssignmentRequest(
                processes=names, fleet=big_fleet, solver="greedy", seed=1
            ),
            suite,
            power_model,
        )
        anneal = solve_assignment(
            AssignmentRequest(
                processes=names,
                fleet=big_fleet,
                solver="anneal",
                seed=1,
                max_iterations=200,
            ),
            suite,
            power_model,
        )
        assert anneal.refinement == "anneal"
        assert anneal.score <= greedy.score
        assert anneal.improvements[0][1] == greedy.score  # starts from greedy

    def test_improvements_trace_is_monotone(self, suite, power_model, big_fleet):
        result = solve_assignment(
            AssignmentRequest(
                processes=tuple(NAMES * 5),
                fleet=big_fleet,
                solver="anneal",
                seed=7,
                max_iterations=200,
            ),
            suite,
            power_model,
        )
        scores = [score for _, score in result.improvements]
        assert scores == sorted(scores, reverse=True)
        iterations = [it for it, _ in result.improvements]
        assert iterations == sorted(iterations)


class TestDeterminism:
    def test_same_seed_same_result_across_runs(self, suite, power_model):
        fleet = FleetSpec(
            groups=(MachineGroup(machine="4-core-server", count=4, sets=32),)
        )
        request = AssignmentRequest(
            processes=tuple(NAMES * 3),
            fleet=fleet,
            solver="anneal",
            seed=11,
            max_iterations=100,
        )
        first = solve_assignment(request, suite, power_model)
        second = solve_assignment(request, suite, power_model)
        assert first == second

    def test_serial_and_pool_engines_agree(self, suite, power_model):
        request = AssignmentRequest(
            processes=("mcf", "gzip", "art", "vpr"),
            machine="4-core-server",
            sets=32,
            solver="anneal",
            seed=5,
        )
        serial = solve_assignment(
            request, suite, power_model, engine="serial"
        )
        pool = solve_assignment(
            request, suite, power_model, engine="pool", workers=2
        )
        assert serial == pool

    def test_different_seeds_may_differ_but_stay_valid(self, suite, power_model):
        fleet = FleetSpec(
            groups=(MachineGroup(machine="2-core-workstation", count=3, sets=32),)
        )
        names = tuple(NAMES * 3)
        for seed in (0, 1):
            result = solve_assignment(
                AssignmentRequest(
                    processes=names,
                    fleet=fleet,
                    solver="anneal",
                    seed=seed,
                    max_iterations=50,
                ),
                suite,
                power_model,
            )
            placed = sorted(
                name
                for machine in result.machines
                for core_names in machine.assignment.values()
                for name in core_names
            )
            assert placed == sorted(names)


# ----------------------------------------------------------------------
# Enumeration guard
# ----------------------------------------------------------------------
class TestEnumerationGuard:
    def test_candidate_bound(self):
        assert candidate_bound(4, 6) == 4**6

    def test_check_raises_over_cap(self):
        with pytest.raises(AssignmentTooLargeError) as excinfo:
            check_enumeration_size(10, 10, max_candidates=1000)
        error = excinfo.value
        assert error.candidate_count == 10**10
        assert error.max_candidates == 1000
        assert "greedy" in str(error)

    def test_default_cap_allows_small_instances(self):
        check_enumeration_size(4, 6)  # 4096 << DEFAULT_MAX_CANDIDATES
        assert candidate_bound(4, 6) < DEFAULT_MAX_CANDIDATES

    def test_fleet_exhaustive_raises_instead_of_hanging(
        self, suite, power_model
    ):
        fleet = FleetSpec(
            groups=(MachineGroup(machine="4-core-server", count=64, sets=32),)
        )
        request = AssignmentRequest(
            processes=tuple(NAMES * 4), fleet=fleet, solver="exhaustive"
        )
        with pytest.raises(AssignmentTooLargeError, match="greedy"):
            solve_assignment(request, suite, power_model)

    def test_capacity_overflow_is_a_configuration_error(
        self, suite, power_model
    ):
        request = AssignmentRequest(
            processes=tuple(NAMES * 2),
            machine="2-core-workstation",
            sets=32,
            max_per_core=1,
        )
        with pytest.raises(ConfigurationError, match="capacity|slots|fit"):
            solve_assignment(request, suite, power_model)


# ----------------------------------------------------------------------
# Objectives and constraints
# ----------------------------------------------------------------------
class TestObjectives:
    def test_fleet_score_directions(self):
        assert fleet_score("min-power", 10.0, 5.0) == 10.0
        assert fleet_score("max-throughput", 10.0, 5.0) == -5.0
        assert fleet_score("min-energy-per-instruction", 10.0, 5.0) == 2.0
        assert fleet_score(
            "throughput-under-watts-budget", 10.0, 5.0, power_budget_watts=20.0
        ) == -5.0

    def test_global_budget_makes_overruns_infeasible(self):
        assert fleet_score(
            "throughput-under-watts-budget", 30.0, 5.0, power_budget_watts=20.0
        ) == float("inf")
        assert fleet_score(
            "min-power", 30.0, 5.0, power_budget_watts=20.0
        ) == float("inf")

    def test_budget_objective_end_to_end(self, suite, power_model):
        request = AssignmentRequest(
            processes=("mcf", "gzip"),
            machine="2-core-workstation",
            sets=32,
            objective="throughput-under-watts-budget",
            power_budget_watts=500.0,
        )
        result = solve_assignment(request, suite, power_model)
        assert result.predicted_watts <= 500.0
        assert result.score < 0  # negated throughput
