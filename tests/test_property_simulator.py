"""Property-based tests over the machine simulator.

Hypothesis draws random small assignments; each run must satisfy the
bookkeeping invariants regardless of workload mix, core placement, or
time sharing.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SimulationScale
from repro.events import Event
from repro.machine.simulator import MachineSimulation
from repro.machine.topology import four_core_server
from repro.workloads.spec import BENCHMARKS, PAPER_EIGHT

TINY = SimulationScale(
    warmup_accesses=400,
    measure_accesses=1_200,
    warmup_s=0.001,
    measure_s=0.003,
    hpc_period_s=0.0005,
    timeslice_s=0.0004,
)

TOPOLOGY = four_core_server(sets=32)

assignments = st.dictionaries(
    keys=st.integers(min_value=0, max_value=3),
    values=st.lists(st.sampled_from(sorted(PAPER_EIGHT)), min_size=1, max_size=2),
    min_size=1,
    max_size=4,
)


def run(assignment, seed):
    workloads = {
        core: [BENCHMARKS[name] for name in names]
        for core, names in assignment.items()
    }
    sim = MachineSimulation(TOPOLOGY, workloads, scale=TINY, seed=seed)
    return sim, sim.run_accesses()


class TestSimulatorInvariants:
    @given(assignments, st.integers(min_value=0, max_value=50))
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_counter_consistency(self, assignment, seed):
        """Hits + misses = accesses; process sums match cache sums."""
        sim, result = run(assignment, seed)
        for process in result.processes:
            assert process.l2_misses <= process.l2_refs
            assert process.l2_refs >= TINY.measure_accesses
            assert 0.0 <= process.mpa <= 1.0
            assert process.spi > 0
        for cache in sim.caches:
            stats = cache.stats
            assert stats.hits + stats.misses == stats.accesses

    @given(assignments, st.integers(min_value=0, max_value=50))
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_occupancy_bounded_by_domain_capacity(self, assignment, seed):
        sim, result = run(assignment, seed)
        for domain_idx, domain in enumerate(TOPOLOGY.domains):
            domain_pids = [
                p.pid for p in result.processes if p.core in domain.core_ids
            ]
            total = sum(
                result.process_by_pid(pid).occupancy_ways for pid in domain_pids
            )
            assert total <= domain.geometry.ways + 1e-6

    @given(assignments, st.integers(min_value=0, max_value=50))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_spi_is_eq3_exactly(self, assignment, seed):
        """Every process's measured SPI obeys its own Eq. 3 constants."""
        sim, result = run(assignment, seed)
        for process in result.processes:
            benchmark = BENCHMARKS[process.name]
            expected = benchmark.spi(process.mpa, TOPOLOGY.frequency_hz)
            assert process.spi == pytest.approx(expected, rel=1e-9)

    @given(assignments, st.integers(min_value=0, max_value=50))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_hpc_banks_match_process_totals(self, assignment, seed):
        """Per-core L2 counters equal the sum over the core's processes."""
        sim, result = run(assignment, seed)
        for core in range(TOPOLOGY.num_cores):
            bank_refs = sim.banks[core].read(Event.L2_REFS)
            process_refs = sum(
                p.counters.l2_refs for p in sim.processes if p.core == core
            )
            assert bank_refs == pytest.approx(process_refs)

    @given(assignments)
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_determinism(self, assignment):
        _, a = run(assignment, seed=7)
        _, b = run(assignment, seed=7)
        for pa, pb in zip(a.processes, b.processes):
            assert pa.mpa == pb.mpa
            assert pa.spi == pb.spi
            assert pa.occupancy_ways == pb.occupancy_ways
