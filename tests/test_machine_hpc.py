"""Unit tests for HPC counter banks and the sampler."""

import pytest

from repro.errors import ConfigurationError
from repro.machine.events import Event, PAPER_NAMES, RATE_EVENTS
from repro.machine.hpc import CounterBank, HpcSampler


class TestEvents:
    def test_rate_events_order_matches_paper(self):
        assert [PAPER_NAMES[e] for e in RATE_EVENTS] == [
            "L1RPS",
            "L2RPS",
            "L2MPS",
            "BRPS",
            "FPPS",
        ]


class TestCounterBank:
    def test_add_and_read(self):
        bank = CounterBank()
        bank.add(Event.L2_REFS, 3.0)
        bank.add(Event.L2_REFS, 2.0)
        assert bank.read(Event.L2_REFS) == 5.0

    def test_counts_property_is_copy(self):
        bank = CounterBank()
        counts = bank.counts
        counts[Event.L2_REFS] = 99.0
        assert bank.read(Event.L2_REFS) == 0.0

    def test_delta_since(self):
        bank = CounterBank()
        bank.add(Event.INSTRUCTIONS, 10.0)
        snap = bank.snapshot()
        bank.add(Event.INSTRUCTIONS, 5.0)
        assert bank.delta_since(snap)[Event.INSTRUCTIONS] == 5.0


class TestSampler:
    def test_windows_closed_on_advance(self):
        banks = [CounterBank(), CounterBank()]
        sampler = HpcSampler(banks, period_s=0.01)
        banks[0].add(Event.L2_REFS, 100.0)
        closed = sampler.advance(0.025)
        assert len(closed) == 2  # two full windows by t=0.025
        first_window = closed[0]
        assert len(first_window) == 2  # one sample per core
        assert first_window[0].rates[Event.L2_REFS] == pytest.approx(10_000.0)
        # Second window saw no further increments.
        assert closed[1][0].rates[Event.L2_REFS] == 0.0

    def test_no_window_before_boundary(self):
        sampler = HpcSampler([CounterBank()], period_s=0.01)
        assert sampler.advance(0.009) == []

    def test_start_offset(self):
        sampler = HpcSampler([CounterBank()], period_s=0.01, start_s=0.5)
        assert sampler.advance(0.509) == []
        assert len(sampler.advance(0.51)) == 1

    def test_samples_for_core(self):
        banks = [CounterBank(), CounterBank()]
        sampler = HpcSampler(banks, period_s=0.01)
        sampler.advance(0.03)
        core1 = sampler.samples_for_core(1)
        assert len(core1) == 3
        assert all(s.core == 1 for s in core1)

    def test_rate_vector_shape(self):
        sampler = HpcSampler([CounterBank()], period_s=0.01)
        (window,) = sampler.advance(0.01)
        assert len(window[0].rate_vector()) == 5

    def test_duration(self):
        sampler = HpcSampler([CounterBank()], period_s=0.02)
        (window,) = sampler.advance(0.02)
        assert window[0].duration == pytest.approx(0.02)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HpcSampler([], period_s=0.01)
        with pytest.raises(ConfigurationError):
            HpcSampler([CounterBank()], period_s=0)
