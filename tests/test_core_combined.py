"""Unit tests for the combined model (Section 5, Figure 1)."""

import numpy as np
import pytest

from repro.core.combined import CombinedModel, classify_scenario
from repro.core.feature import FeatureVector, ProfileVector
from repro.core.performance_model import PerformanceModel
from repro.core.power_model import CorePowerModel, PowerTrainingSet
from repro.errors import ConfigurationError
from repro.events import Event, RATE_EVENTS
from repro.machine.topology import four_core_server
from repro.workloads.spec import BENCHMARKS

FREQ = 2e8
NAMES = ("mcf", "art", "gzip", "twolf")

# A transparent linear power truth for exact assertions.
COEFFS = {
    Event.L1_REFS: 8e-8,
    Event.L2_REFS: 1.2e-7,
    Event.L2_MISSES: -5e-7,
    Event.BRANCHES: 7e-8,
    Event.FP_OPS: 9e-8,
}
P_IDLE = 12.0


def linear_power(rates):
    return P_IDLE + sum(COEFFS[event] * rates.get(event, 0.0) for event in RATE_EVENTS)


#: Physically plausible rate ranges: misses are a small share of refs.
_RANGES = {
    Event.L1_REFS: 1e8,
    Event.L2_REFS: 1.5e7,
    Event.L2_MISSES: 5e6,
    Event.BRANCHES: 5e7,
    Event.FP_OPS: 6e7,
}


@pytest.fixture(scope="module")
def power_model():
    rng = np.random.default_rng(0)
    training = PowerTrainingSet()
    for _ in range(60):
        rates = {event: rng.uniform(0, _RANGES[event]) for event in RATE_EVENTS}
        training.add(rates, linear_power(rates))
    return CorePowerModel().fit(training)


@pytest.fixture(scope="module")
def combined(power_model):
    topology = four_core_server(sets=64)
    perf = PerformanceModel(ways=16)
    profiles = {}
    for name in NAMES:
        benchmark = BENCHMARKS[name]
        perf.register(FeatureVector.oracle(benchmark, FREQ))
        profiles[name] = ProfileVector(
            name=name,
            p_alone=20.0 + len(name),  # distinct, recognisable values
            l1rpi=benchmark.mix.l1rpi,
            l2rpi=benchmark.mix.l2rpi,
            brpi=benchmark.mix.brpi,
            fppi=benchmark.mix.fppi,
        )
    return CombinedModel(
        topology=topology,
        performance_models=[perf],
        power_model=power_model,
        profiles=profiles,
    )


class TestProcessPower:
    def test_matches_eq9_at_operating_point(self, combined):
        benchmark = BENCHMARKS["mcf"]
        spi, l2mpr = 5e-9, 0.4
        expected = linear_power(
            {
                Event.L1_REFS: benchmark.mix.l1rpi / spi,
                Event.L2_REFS: benchmark.mix.l2rpi / spi,
                Event.L2_MISSES: benchmark.mix.l2rpi * l2mpr / spi,
                Event.BRANCHES: benchmark.mix.brpi / spi,
                Event.FP_OPS: benchmark.mix.fppi / spi,
            }
        )
        assert combined.process_power("mcf", spi, l2mpr) == pytest.approx(
            expected, rel=1e-6
        )

    def test_power_split_sums_to_total(self, combined):
        split = combined.power_split("art", spi=4e-9, l2mpr=0.5)
        total = combined.process_power("art", 4e-9, 0.5)
        assert split.total == pytest.approx(total, rel=1e-6)
        assert split.p_idle == pytest.approx(P_IDLE, rel=1e-3)

    def test_more_misses_less_power(self, combined):
        """c3 < 0: higher L2MPR at fixed SPI means lower power."""
        low = combined.process_power("mcf", 5e-9, 0.1)
        high = combined.process_power("mcf", 5e-9, 0.9)
        assert high < low

    def test_unknown_process(self, combined):
        with pytest.raises(KeyError):
            combined.process_power("nosuch", 1e-9, 0.1)

    def test_bad_spi(self, combined):
        with pytest.raises(ConfigurationError):
            combined.process_power("mcf", 0.0, 0.1)


class TestScenarioClassification:
    def test_four_scenarios(self):
        topology = four_core_server(sets=64)
        empty = {}
        assert classify_scenario(topology, empty, 0) == 1
        assert classify_scenario(topology, {0: ("mcf",)}, 0) == 2
        assert classify_scenario(topology, {1: ("mcf",)}, 0) == 3
        assert classify_scenario(topology, {0: ("mcf",), 1: ("art",)}, 0) == 4


class TestAssignmentPower:
    def test_empty_machine_is_all_idle(self, combined, power_model):
        estimate = combined.estimate_assignment_power({})
        assert estimate.watts == pytest.approx(4 * power_model.p_idle, rel=1e-6)

    def test_single_process_uses_p_alone(self, combined, power_model):
        estimate = combined.estimate_assignment_power({0: ("mcf",)})
        expected = combined.profiles["mcf"].p_alone + 3 * power_model.p_idle
        assert estimate.watts == pytest.approx(expected, rel=1e-6)
        assert estimate.combinations_evaluated == 0

    def test_time_shared_single_core_averages_p_alone(self, combined, power_model):
        estimate = combined.estimate_assignment_power({0: ("mcf", "gzip")})
        p_alone = (
            combined.profiles["mcf"].p_alone + combined.profiles["gzip"].p_alone
        ) / 2
        assert estimate.watts == pytest.approx(
            p_alone + 3 * power_model.p_idle, rel=1e-6
        )

    def test_contending_pair_uses_model(self, combined):
        estimate = combined.estimate_assignment_power({0: ("mcf",), 1: ("art",)})
        assert estimate.combinations_evaluated == 1
        # Idle domain contributes 2 idle cores.
        assert estimate.per_domain_watts[1] == pytest.approx(
            2 * combined.power_model.p_idle, rel=1e-6
        )

    def test_combination_counting(self, combined):
        estimate = combined.estimate_assignment_power(
            {0: ("mcf", "gzip"), 1: ("art", "twolf")}
        )
        assert estimate.combinations_evaluated == 4

    def test_domains_sum(self, combined):
        estimate = combined.estimate_assignment_power(
            {0: ("mcf",), 1: ("art",), 2: ("gzip",), 3: ("twolf",)}
        )
        assert estimate.watts == pytest.approx(sum(estimate.per_domain_watts))

    def test_core_out_of_range(self, combined):
        with pytest.raises(ConfigurationError):
            combined.estimate_assignment_power({7: ("mcf",)})

    def test_incremental_assignment(self, combined):
        base = {0: ("mcf",)}
        estimate, scenario = combined.estimate_after_assigning(base, "art", 1)
        assert scenario == 3  # core 1 idle, partner core 0 busy
        direct = combined.estimate_assignment_power({0: ("mcf",), 1: ("art",)})
        assert estimate.watts == pytest.approx(direct.watts)


class TestThroughput:
    def test_solo_throughput_positive(self, combined):
        ips = combined.estimate_assignment_throughput({0: ("gzip",)})
        assert ips > 0

    def test_contention_lowers_throughput(self, combined):
        solo = combined.estimate_assignment_throughput({0: ("mcf",)})
        pair = combined.estimate_assignment_throughput({0: ("mcf",), 1: ("mcf",)})
        # Two contending instances give less than 2x one instance.
        assert pair < 2 * solo

    def test_time_sharing_halves_share(self, combined):
        one = combined.estimate_assignment_throughput({0: ("gzip",)})
        two = combined.estimate_assignment_throughput({0: ("gzip", "gzip")})
        assert two == pytest.approx(one, rel=0.01)  # same core, split in two

    def test_uneven_per_core_counts_weighted_by_time_share(self, combined):
        """Regression: combo averaging must equal explicit 1/k weighting.

        With three processes on core 0 and one on core 1, the uniform
        average over the three cross-core combinations has to weight
        each core-0 process by 1/3 and twolf (present in every
        combination) by 1.  An explicit per-process reconstruction
        from the predicted operating points must therefore match the
        model's estimate exactly.
        """
        assignment = {0: ("mcf", "gzip", "art"), 1: ("twolf",)}
        estimated = combined.estimate_assignment_throughput(assignment)

        perf = combined.performance_models[0]
        core0 = ["mcf", "gzip", "art"]
        expected = 0.0
        twolf_points = []
        for name in core0:
            prediction = {
                p.name: p for p in perf.predict([name, "twolf"]).processes
            }
            # Each core-0 process runs 1/3 of the time.
            expected += prediction[name].ips / 3.0
            twolf_points.append(prediction["twolf"].ips)
        # twolf runs the whole time, averaged over its three partners.
        expected += sum(twolf_points) / len(twolf_points)
        assert estimated == pytest.approx(expected, rel=1e-9)

    def test_uneven_counts_both_cores_time_shared(self, combined):
        """Two on one core, one on the other: four combination weights."""
        assignment = {0: ("mcf", "gzip"), 1: ("art", "twolf")}
        estimated = combined.estimate_assignment_throughput(assignment)
        perf = combined.performance_models[0]
        expected = 0.0
        combos = [(a, b) for a in ("mcf", "gzip") for b in ("art", "twolf")]
        for a, b in combos:
            prediction = {p.name: p for p in perf.predict([a, b]).processes}
            expected += prediction[a].ips + prediction[b].ips
        assert estimated == pytest.approx(expected / len(combos), rel=1e-9)


class TestConstruction:
    def test_ways_mismatch_rejected(self, power_model, combined):
        perf = PerformanceModel(ways=8)
        with pytest.raises(ConfigurationError):
            CombinedModel(
                topology=four_core_server(sets=64),
                performance_models=[perf],
                power_model=power_model,
                profiles={},
            )
