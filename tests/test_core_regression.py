"""Unit tests for the MVLR implementation."""

import numpy as np
import pytest

from repro.core.regression import LinearRegression
from repro.errors import ConfigurationError, ModelNotFittedError


@pytest.fixture
def data():
    rng = np.random.default_rng(1)
    x = rng.random((60, 3))
    coefficients = np.array([2.0, -1.0, 0.5])
    y = x @ coefficients + 4.0
    return x, y, coefficients


class TestFit:
    def test_exact_recovery(self, data):
        x, y, coefficients = data
        model = LinearRegression().fit(x, y)
        assert model.intercept == pytest.approx(4.0)
        assert np.allclose(model.coefficients, coefficients)
        assert model.r_squared == pytest.approx(1.0)

    def test_fixed_intercept(self, data):
        x, y, coefficients = data
        model = LinearRegression().fit(x, y, fixed_intercept=4.0)
        assert model.intercept == 4.0
        assert np.allclose(model.coefficients, coefficients)

    def test_fixed_intercept_constrains(self, data):
        x, y, _ = data
        model = LinearRegression().fit(x, y, fixed_intercept=10.0)
        assert model.intercept == 10.0
        assert model.r_squared < 1.0  # wrong anchor costs fit quality

    def test_needs_more_rows_than_features(self):
        with pytest.raises(ConfigurationError):
            LinearRegression().fit([[1.0, 2.0]], [1.0])

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            LinearRegression().fit([[1.0], [2.0]], [1.0])
        with pytest.raises(ConfigurationError):
            LinearRegression().fit([1.0, 2.0], [1.0, 2.0])


class TestPredict:
    def test_predict_batch(self, data):
        x, y, _ = data
        model = LinearRegression().fit(x, y)
        assert np.allclose(model.predict(x), y)

    def test_predict_one(self, data):
        x, y, _ = data
        model = LinearRegression().fit(x, y)
        assert model.predict_one(x[0]) == pytest.approx(y[0])

    def test_unfitted_raises(self):
        with pytest.raises(ModelNotFittedError):
            LinearRegression().predict([[1.0, 2.0, 3.0]])


class TestAccuracy:
    def test_perfect_accuracy(self, data):
        x, y, _ = data
        model = LinearRegression().fit(x, y)
        assert model.accuracy(x, y) == pytest.approx(1.0)

    def test_noisy_accuracy_below_one(self, data):
        x, y, _ = data
        rng = np.random.default_rng(2)
        noisy = y + rng.normal(0, 0.5, y.size)
        model = LinearRegression().fit(x, noisy)
        accuracy = model.accuracy(x, noisy)
        assert 0.5 < accuracy < 1.0

    def test_zero_target_rejected(self, data):
        x, y, _ = data
        model = LinearRegression().fit(x, y)
        y0 = y.copy()
        y0[0] = 0.0
        with pytest.raises(ConfigurationError):
            model.accuracy(x, y0)
