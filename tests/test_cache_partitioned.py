"""Unit tests for the way-partitioned cache."""

import pytest

from repro.cache.partitioned import WayPartitionedCache
from repro.config import CacheGeometry
from repro.errors import ConfigurationError


@pytest.fixture
def cache():
    return WayPartitionedCache(
        CacheGeometry(sets=4, ways=8), allocations={0: 2, 1: 6}
    )


class TestPartitionedCache:
    def test_hits_within_quota(self, cache):
        cache.access(0, owner=0)
        assert cache.access(0, owner=0) is True

    def test_quota_enforced(self, cache):
        # Owner 0 has 2 ways per set; lines 0, 4, 8 share set 0.
        cache.access(0, owner=0)
        cache.access(4, owner=0)
        cache.access(8, owner=0)  # evicts owner 0's own LRU (line 0)
        assert cache.access(0, owner=0) is False

    def test_isolation_between_owners(self, cache):
        """Owner 1's traffic can never evict owner 0's lines."""
        cache.access(0, owner=0)
        for step in range(1, 50):
            cache.access(step * 4, owner=1)  # hammer set 0 as owner 1
        assert cache.access(0, owner=0) is True

    def test_occupancy_bounded_by_quota(self, cache):
        for line in range(100):
            cache.access(line, owner=1)
        assert cache.occupancy_ways(1) <= 6.0
        assert cache.resident_lines(1) <= 6 * 4

    def test_mpa_matches_histogram_tail(self):
        """Partitioned MPA equals Eq. 2 at the allocation exactly."""
        from repro.workloads.generator import build_generator
        from repro.workloads.spec import BENCHMARKS

        geometry = CacheGeometry(sets=16, ways=16)
        benchmark = BENCHMARKS["twolf"]
        for quota in (3, 8, 14):
            cache = WayPartitionedCache(geometry, {0: quota})
            generator = build_generator(benchmark, sets=16, seed=4)
            for _ in range(8_000):
                cache.access(generator.next_line(), 0)
            baseline = cache.stats.owner(0).snapshot()
            for _ in range(25_000):
                cache.access(generator.next_line(), 0)
            window = cache.stats.owner(0).delta_since(baseline)
            expected = benchmark.intrinsic_histogram().mpa(quota)
            assert window.miss_rate == pytest.approx(expected, abs=0.04)

    def test_unknown_owner_rejected(self, cache):
        with pytest.raises(ConfigurationError):
            cache.access(0, owner=9)

    def test_over_allocation_rejected(self):
        with pytest.raises(ConfigurationError):
            WayPartitionedCache(
                CacheGeometry(sets=4, ways=4), allocations={0: 3, 1: 2}
            )

    def test_zero_quota_rejected(self):
        with pytest.raises(ConfigurationError):
            WayPartitionedCache(CacheGeometry(sets=4, ways=4), allocations={0: 0})

    def test_empty_allocations_rejected(self):
        with pytest.raises(ConfigurationError):
            WayPartitionedCache(CacheGeometry(sets=4, ways=4), allocations={})


class TestPartitioningModel:
    def test_optimal_beats_even_on_skewed_demand(self):
        from repro.core.feature import FeatureVector
        from repro.core.partitioning import even_partition, optimal_partition
        from repro.workloads.spec import BENCHMARKS

        features = [
            FeatureVector.oracle(BENCHMARKS["gzip"], 2e8),
            FeatureVector.oracle(BENCHMARKS["mcf"], 2e8),
        ]
        optimal = optimal_partition(features, ways=16, objective="throughput")
        even = even_partition(features, ways=16)
        optimal_ips = sum(1.0 / s for s in optimal.predicted_spis)
        even_ips = sum(1.0 / s for s in even.predicted_spis)
        assert optimal_ips >= even_ips - 1e-9

    def test_allocation_sums_to_ways(self):
        from repro.core.feature import FeatureVector
        from repro.core.partitioning import optimal_partition
        from repro.workloads.spec import BENCHMARKS

        features = [
            FeatureVector.oracle(BENCHMARKS[name], 2e8)
            for name in ("mcf", "art", "twolf")
        ]
        for objective in ("misses", "throughput", "weighted_speedup"):
            plan = optimal_partition(features, ways=16, objective=objective)
            assert sum(plan.allocation) == 16
            assert all(s >= 1 for s in plan.allocation)

    def test_every_process_needs_a_way(self):
        from repro.core.feature import FeatureVector
        from repro.core.partitioning import optimal_partition
        from repro.workloads.spec import BENCHMARKS

        features = [FeatureVector.oracle(BENCHMARKS["mcf"], 2e8)] * 5
        with pytest.raises(ConfigurationError):
            optimal_partition(features, ways=4)

    def test_unknown_objective(self):
        from repro.core.feature import FeatureVector
        from repro.core.partitioning import optimal_partition
        from repro.workloads.spec import BENCHMARKS

        features = [FeatureVector.oracle(BENCHMARKS["mcf"], 2e8)] * 2
        with pytest.raises(ConfigurationError):
            optimal_partition(features, ways=8, objective="vibes")
