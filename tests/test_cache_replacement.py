"""Unit tests for replacement policies."""

import pytest

from repro.cache.replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    TreePlruPolicy,
    make_policy,
)


class TestLru:
    def test_victim_is_least_recent(self):
        policy = LruPolicy()
        state = policy.make_state(4)
        for way in (0, 1, 2, 3):
            policy.on_fill(state, way)
        assert policy.victim(state) == 0

    def test_hit_refreshes_recency(self):
        policy = LruPolicy()
        state = policy.make_state(4)
        for way in (0, 1, 2, 3):
            policy.on_fill(state, way)
        policy.on_hit(state, 0)
        assert policy.victim(state) == 1

    def test_sequence_matches_reference(self):
        """Cross-check against a brute-force recency list."""
        policy = LruPolicy()
        ways = 8
        state = policy.make_state(ways)
        reference = []
        for way in range(ways):  # fill all ways in order
            policy.on_fill(state, way)
            reference.append(way)
        for way in (0, 3, 5, 3, 7):
            policy.on_hit(state, way)
            reference.remove(way)
            reference.append(way)
        assert policy.victim(state) == reference[0]


class TestFifo:
    def test_hits_do_not_refresh(self):
        policy = FifoPolicy()
        state = policy.make_state(4)
        for way in (0, 1, 2, 3):
            policy.on_fill(state, way)
        policy.on_hit(state, 0)
        assert policy.victim(state) == 0  # still first in

    def test_fill_order_respected(self):
        policy = FifoPolicy()
        state = policy.make_state(3)
        for way in (2, 0, 1):
            policy.on_fill(state, way)
        assert policy.victim(state) == 2


class TestRandom:
    def test_victims_in_range_and_deterministic(self):
        a = RandomPolicy(seed=7)
        b = RandomPolicy(seed=7)
        state_a = a.make_state(8)
        state_b = b.make_state(8)
        seq_a = [a.victim(state_a) for _ in range(50)]
        seq_b = [b.victim(state_b) for _ in range(50)]
        assert seq_a == seq_b
        assert all(0 <= v < 8 for v in seq_a)
        assert len(set(seq_a)) > 1  # actually random


class TestTreePlru:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            TreePlruPolicy().make_state(6)

    def test_never_evicts_most_recent(self):
        policy = TreePlruPolicy()
        state = policy.make_state(8)
        for way in range(8):
            policy.on_fill(state, way)
            assert policy.victim(state) != way

    def test_cycles_through_all_ways(self):
        """Filling the victim repeatedly must touch every way."""
        policy = TreePlruPolicy()
        state = policy.make_state(8)
        seen = set()
        for _ in range(16):
            victim = policy.victim(state)
            seen.add(victim)
            policy.on_fill(state, victim)
        assert seen == set(range(8))


class TestFactory:
    @pytest.mark.parametrize("name", ["lru", "fifo", "random", "tree-plru"])
    def test_known_names(self, name):
        assert make_policy(name).name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown replacement policy"):
            make_policy("plru-ish")
