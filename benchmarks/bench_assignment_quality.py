"""End-to-end assignment quality (the paper's motivating use case).

Prices every distinct one-process-per-core mapping of four programs
from profiles alone, then runs each for measured ground truth, and
reports the rank correlation and the regret of trusting the model's
choice.
"""

from conftest import once, report

from repro.experiments.assignment_quality import run_assignment_quality


def test_assignment_quality(benchmark, server_context):
    names = ("mcf", "art", "gzip", "twolf")
    result = once(
        benchmark, lambda: run_assignment_quality(server_context, names=names)
    )
    chosen = result.chosen
    best = result.true_best
    lines = [
        f"Assignment space: {len(result.ranked)} distinct mappings of {names}",
        f"Measured power spread across the space: "
        f"{result.measured_spread_watts:.2f} W",
        f"Rank correlation (predicted vs measured): "
        f"{result.rank_correlation:.3f}",
        "",
        f"Model's choice:  {dict(chosen.assignment)} -> "
        f"predicted {chosen.predicted_watts:.1f} W, "
        f"measured {chosen.measured_watts:.1f} W",
        f"True optimum:    {dict(best.assignment)} -> "
        f"measured {best.measured_watts:.1f} W",
        f"Regret: {result.regret_watts:.2f} W ({result.regret_pct:.2f} %)",
    ]
    report("assignment_quality", "\n".join(lines))

    # Low regret is the operative criterion: the model's pick must cost
    # almost nothing versus the measured optimum.  Rank correlation is
    # only a weak sanity check — many mappings are physically
    # near-equivalent (the same cache-sharing pairs on a different
    # die), so their relative ordering is measurement noise and high
    # correlation is not attainable even for a perfect model.
    assert result.regret_pct < 2.0
    assert result.rank_correlation > 0.0
