"""§4.1 model choice: MVLR vs a 3-layer sigmoid neural network.

Paper reference values: MVLR accuracy 96.2 %, NN accuracy 96.8 % —
close enough that the simpler MVLR model wins.  Also checks the
paper's observation that the fitted L2MPS coefficient (c3) is
negative.
"""

from conftest import once, report

from repro.analysis.tables import render_table
from repro.experiments.power_training import run_model_choice


def test_mvlr_vs_nn(benchmark, server_context):
    result = once(benchmark, lambda: run_model_choice(server_context))

    rows = [
        ("MVLR", result.mvlr_accuracy_pct, result.mvlr_r_squared),
        ("3-layer sigmoid NN", result.nn_accuracy_pct, float("nan")),
    ]
    lines = [
        render_table(
            ["Model", "Accuracy (%)", "R^2"],
            rows,
            title="Power model construction (Section 4.1)",
        ),
        "",
        f"Training rows: {result.training_rows}",
        "Fitted Eq. 9 coefficients: "
        + ", ".join(f"{k}={v:.3e}" for k, v in result.coefficients.items()),
        "",
        "Paper: MVLR 96.2 %, NN 96.8 % (NN advantage 0.6 points)",
        f"Ours : MVLR {result.mvlr_accuracy_pct:.1f} %, "
        f"NN {result.nn_accuracy_pct:.1f} % "
        f"(advantage {result.nn_advantage_pct:.1f} points)",
    ]
    report("mvlr_vs_nn", "\n".join(lines))

    # Shape: both accurate, NN no worse, c3 negative.
    assert result.mvlr_accuracy_pct > 90.0
    assert result.nn_accuracy_pct >= result.mvlr_accuracy_pct - 1.0
    assert result.nn_advantage_pct < 5.0
    assert result.coefficients["L2MPS"] < 0
