"""Serve scale-out: result-cache hit rate, worker fan-out, mixed load.

Three measurements over the same hot work list (a small set of
distinct mixes, each requested many times — the scheduler-shaped
traffic the result cache exists for):

- **cold** — result cache disabled: every repeat re-solves the
  equilibrium, the pre-cache serving ceiling.
- **cache-hit** — default cache, warmed by one pass: repeats skip the
  batcher and solver entirely.  Asserted >= 1.15x cold on every host
  with zero shed/errors (on one CPU the hit path is HTTP-bound, so
  the honest floor is modest), and in full mode the absolute hit
  req/s must clear the 513 req/s pre-cache single-worker baseline —
  that number is what the README documents.
- **4 workers** (full mode, >= 4 CPUs, ``SO_REUSEPORT`` hosts) — the
  same traffic against a 4-process shared-nothing pool, asserted at
  >= 5x the cold single-worker baseline at bounded p95: cache hits
  per worker times kernel connection spreading.

Plus a **sustained mixed read/publish** run on every host: closed-loop
readers for a fixed duration while a publisher thread hot-swaps a
model every 50 ms, then :meth:`LoadReport.check_slo` asserts zero
errors, zero publish failures and a sane p95 — serving must stay
correct (and the cache must invalidate) under concurrent republish.

Half the repeated requests use a permuted mix order, so the measured
hit rate also exercises the canonical-key restore path (hits are
bit-identical for any ordering of the same multiset).
"""

import itertools
import os
import socket
import sys

from repro.analysis.tables import render_table
from repro.api import ProfileSuiteResult, serve
from repro.serve import PublishLoad, run_load, start_worker_pool
from repro.core.feature import FeatureVector
from repro.workloads.spec import BENCHMARKS, PAPER_EIGHT

WAYS = 16
CONCURRENCY = 32
DISTINCT_MIXES = 8
REPEATS = 64
QUICK_REPEATS = 16
#: The single-worker serving throughput documented before this cache
#: existed (ROADMAP / bench_serve_throughput on the dev host): full
#: mode asserts the cache-hit path clears it outright on one CPU.
PRE_CACHE_BASELINE_RPS = 513.0
MIXED_DURATION_S = 2.0
QUICK_MIXED_DURATION_S = 0.8
POOL_WORKERS = 4


def _suite() -> ProfileSuiteResult:
    return ProfileSuiteResult(
        machine="4-core-server",
        features={
            name: FeatureVector.oracle(BENCHMARKS[name], 2e8)
            for name in PAPER_EIGHT
        },
        profiles={},
    )


def _hot_work_list(repeats: int):
    """DISTINCT_MIXES mixes, each requested ``repeats`` times.

    Odd repeats are order-reversed: a hit must serve every ordering of
    the multiset through the canonical-key restore, so the measurement
    covers that path too.
    """
    names = sorted(PAPER_EIGHT)
    distinct = [
        list(combo)
        for combo in itertools.islice(
            itertools.combinations_with_replacement(names, 4), DISTINCT_MIXES
        )
    ]
    work = []
    for repeat in range(repeats):
        for mix in distinct:
            work.append(list(reversed(mix)) if repeat % 2 else list(mix))
    return distinct, work


def _drive(work, *, cache: bool, warm_with=None, **server_kwargs):
    with serve(
        {"default": _suite()},
        result_cache_size=4096 if cache else 0,
        **server_kwargs,
    ) as handle:
        if warm_with:
            run_load(
                handle.host, handle.port, warm_with, ways=WAYS, concurrency=4
            )
        load = run_load(
            handle.host, handle.port, work, ways=WAYS, concurrency=CONCURRENCY
        )
        counters = handle.service.metrics.to_dict()["counters"]
    return load, counters


def _drive_pool(work, warm_with):
    with start_worker_pool(
        {"default": _suite().to_dict()}, http_workers=POOL_WORKERS
    ) as pool:
        run_load(pool.host, pool.port, warm_with * POOL_WORKERS,
                 ways=WAYS, concurrency=4 * POOL_WORKERS)
        return run_load(
            pool.host, pool.port, work, ways=WAYS, concurrency=CONCURRENCY
        )


def _measure(quick: bool):
    repeats = QUICK_REPEATS if quick else REPEATS
    distinct, work = _hot_work_list(repeats)
    cold, _ = _drive(work, cache=False)
    hot, counters = _drive(work, cache=True, warm_with=distinct)
    result = {
        "requests": len(work),
        "cold": cold,
        "hot": hot,
        "hit_ratio": (
            hot.throughput_rps / cold.throughput_rps
            if cold.throughput_rps
            else 0.0
        ),
        "cache_hits": counters.get("serve.cache.hits", 0),
        "pool": None,
        "pool_ratio": 0.0,
    }
    cpus = os.cpu_count() or 1
    if not quick and cpus >= POOL_WORKERS and hasattr(socket, "SO_REUSEPORT"):
        pool_load = _drive_pool(work, distinct)
        result["pool"] = pool_load
        result["pool_ratio"] = (
            pool_load.throughput_rps / cold.throughput_rps
            if cold.throughput_rps
            else 0.0
        )
    # Sustained mixed read/publish with SLO assertions baked in.
    with serve({"default": _suite(), "swap": _suite()}) as handle:
        documents = [_swap_doc(1.0), _swap_doc(2.0)]
        mixed = run_load(
            handle.host,
            handle.port,
            distinct,
            ways=WAYS,
            concurrency=8,
            duration_s=QUICK_MIXED_DURATION_S if quick else MIXED_DURATION_S,
            publish=PublishLoad(name="swap", documents=documents),
        )
    result["mixed"] = mixed
    return result


def _swap_doc(scale: float):
    """A distinct publishable suite document (hot-swap fodder)."""
    suite = ProfileSuiteResult(
        machine="4-core-server",
        features={
            name: FeatureVector.oracle(BENCHMARKS[name], 2e8 * scale)
            for name in PAPER_EIGHT
        },
        profiles={},
    )
    return suite.to_dict()


def _render(result) -> str:
    loads = [("cold (no cache)", result["cold"]), ("cache-hit", result["hot"])]
    if result["pool"] is not None:
        loads.append((f"{POOL_WORKERS} workers", result["pool"]))
    loads.append(("mixed r/w", result["mixed"]))
    rows = [
        (
            label,
            load.completed,
            load.shed,
            load.errors,
            load.published,
            load.throughput_rps,
            load.latency_quantile(0.5) * 1e3,
            load.latency_quantile(0.95) * 1e3,
        )
        for label, load in loads
    ]
    cpus = os.cpu_count() or 1
    table = render_table(
        ["Mode", "OK", "Shed", "Err", "Pub", "req/s", "p50 (ms)", "p95 (ms)"],
        rows,
        title=(
            f"/v1/predict hot work list ({DISTINCT_MIXES} distinct mixes x "
            f"{result['requests'] // DISTINCT_MIXES} repeats), "
            f"concurrency {CONCURRENCY}, {cpus} host CPUs"
        ),
        float_format="{:.4g}",
    )
    lines = [
        table,
        "",
        f"Cache-hit/cold throughput: {result['hit_ratio']:.2f}x "
        f"({result['cache_hits']} served from cache)",
    ]
    if result["pool"] is not None:
        lines.append(
            f"{POOL_WORKERS}-worker/cold throughput: "
            f"{result['pool_ratio']:.2f}x"
        )
    return "\n".join(lines)


def _check(result, quick: bool) -> None:
    cpus = os.cpu_count() or 1
    result["cold"].check_slo(max_shed_rate=0.0, max_error_rate=0.0)
    result["hot"].check_slo(max_shed_rate=0.0, max_error_rate=0.0)
    # On one CPU the hit path is bounded by the HTTP round trip itself
    # (client threads share the core with the server), so the floor is
    # a modest ratio; the absolute req/s is the documented win.
    assert result["hit_ratio"] >= 1.1, (
        f"cache-hit throughput only {result['hit_ratio']:.2f}x cold on a "
        f"{cpus}-CPU host (hits skip the solver; they must pay)"
    )
    if not quick:
        assert result["hot"].throughput_rps > PRE_CACHE_BASELINE_RPS, (
            f"cache-hit path served {result['hot'].throughput_rps:.0f} "
            f"req/s, below the {PRE_CACHE_BASELINE_RPS:.0f} req/s "
            "pre-cache single-worker baseline"
        )
    expected_hits = result["requests"]  # every repeat after the warm pass
    assert result["cache_hits"] >= expected_hits, (
        f"only {result['cache_hits']} cache hits for {expected_hits} "
        "repeated requests — the canonical key is missing repeats"
    )
    result["mixed"].check_slo(
        max_p95_s=5.0, max_shed_rate=0.0, max_error_rate=0.0
    )
    assert result["mixed"].published >= 2, "publisher never hot-swapped"
    if result["pool"] is not None:
        result["pool"].check_slo(
            max_p95_s=1.0, max_shed_rate=0.0, max_error_rate=0.0
        )
        assert result["pool_ratio"] >= 5.0, (
            f"{POOL_WORKERS}-worker aggregate only "
            f"{result['pool_ratio']:.2f}x the cold single-worker baseline "
            f"on a {cpus}-CPU host (need >= 5x)"
        )


def test_serve_scale(benchmark):
    from conftest import QUICK, once, report

    result = once(benchmark, lambda: _measure(QUICK))
    report("serve_scale", _render(result))
    _check(result, QUICK)


def main(argv) -> int:
    quick = "--quick" in argv
    result = _measure(quick)
    print(_render(result))
    _check(result, quick)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
