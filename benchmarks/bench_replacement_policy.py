"""Ablation: model error when the LRU assumption is violated.

The paper's model assumes LRU replacement (Section 3.1).  This bench
runs the ground-truth machine with FIFO / random / tree-PLRU caches
while the model still assumes LRU, quantifying the assumption's cost.
"""

from conftest import QUICK, once, report

from repro.analysis.tables import render_table
from repro.experiments.ablations import run_replacement_policy


def test_replacement_policy_ablation(benchmark, server_context):
    pairs = [("mcf", "art"), ("gzip", "mcf")] if QUICK else None
    cases = once(
        benchmark, lambda: run_replacement_policy(server_context, pairs=pairs)
    )
    rows = [(c.policy, c.mean_spi_error_pct, c.mean_mpa_error_pts) for c in cases]
    lines = [
        render_table(
            ["Ground-truth policy", "SPI err (%)", "MPA err (pts)"],
            rows,
            title="Replacement-policy ablation (model assumes LRU)",
        )
    ]
    report("replacement_policy", "\n".join(lines))

    by_policy = {c.policy: c for c in cases}
    # LRU (the assumption holding) must be the best or near-best.
    lru_err = by_policy["lru"].mean_spi_error_pct
    assert lru_err < 8.0
    assert lru_err <= by_policy["random"].mean_spi_error_pct + 1.0
    # Tree-PLRU approximates LRU: error should stay moderate.
    assert by_policy["tree-plru"].mean_spi_error_pct < lru_err + 15.0
