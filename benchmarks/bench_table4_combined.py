"""Table 4: combined-model validation (profiles only) on the 4-core server.

Paper reference values (avg/max error of average power, %):
  1 proc./core (32):           2.84 / 5.78
  2 proc./core (10):           1.92 / 6.29
  4 proc., 1 core unused (16): 2.68 / 5.48
  4 proc., 2 core unused (16): 2.53 / 5.99
  4 proc., 3 core unused (9):  0.49 / 1.95

Note (see EXPERIMENTS.md): our scaled machine amplifies cross-slice
cache refill for time-shared memory-hungry processes, so the
many-processes-per-core rows carry a few extra points of error
relative to the paper.
"""

from conftest import QUICK, once, report

from repro.experiments.table4 import render_table4, run_table4


def test_table4_combined_model(benchmark, server_context):
    limits = [4, 2, 2, 2, 2] if QUICK else None
    scenarios = once(benchmark, lambda: run_table4(server_context, limits=limits))
    lines = [render_table4(scenarios), ""]
    lines.append(
        "Paper: 2.84/5.78; 1.92/6.29; 2.68/5.48; 2.53/5.99; 0.49/1.95"
    )
    report("table4", "\n".join(lines))

    for scenario in scenarios:
        assert scenario.avg_error.mean < 12.0
    # The headline: profiles-only estimation is accurate for the pure
    # cache-contention scenario the paper's models target.
    assert scenarios[0].avg_error.mean < 6.0
