"""§4.2 context-switch refill transient.

Paper reference value: refilling the cache after a context switch
takes ~1 % of a 20 ms timeslice, so time-sharing power can be the
plain mean of per-process powers.

Our scaled machine inflates the refill *fraction* for processes whose
hot set spans many ways (see EXPERIMENTS.md), so the bench reports a
small-working-set pair (the paper's regime), a memory-hungry pair for
contrast, and shows the fraction shrinking with slice length.
"""

from conftest import once, report

from repro.analysis.tables import render_table
from repro.experiments.context_switch import run_context_switch


def test_context_switch_refill(benchmark, server_context):
    def run_all():
        return [
            run_context_switch(server_context, pair=("gzip", "bzip2"), timeslice_s=0.020),
            run_context_switch(server_context, pair=("gzip", "bzip2"), timeslice_s=0.060),
            run_context_switch(server_context, pair=("mcf", "twolf"), timeslice_s=0.020),
        ]

    results = once(benchmark, run_all)
    rows = [
        (
            f"{r.pair[0]}+{r.pair[1]}",
            r.timeslice_s * 1e3,
            r.mean_refill_fraction * 100.0,
            r.mean_refill_stall_s * 1e6,
            r.mean_excess_misses,
        )
        for r in results
    ]
    lines = [
        render_table(
            ["Pair", "Slice (ms)", "Refill (% slice)", "Stall (us)", "Excess misses"],
            rows,
            title="Context-switch refill transient (Section 4.2)",
        ),
        "",
        "Paper: refill ~1 % of a 20 ms timeslice (negligible)",
    ]
    report("context_switch", "\n".join(lines))

    small, longer, big = results
    # Small-footprint pair: single-digit percent, the paper's regime.
    assert small.mean_refill_fraction < 0.10
    # Longer slices amortise the fixed refill cost.
    assert longer.mean_refill_fraction < small.mean_refill_fraction
    # Large-footprint pair pays more (scaled-cache inflation).
    assert big.mean_excess_misses >= small.mean_excess_misses * 0.5
