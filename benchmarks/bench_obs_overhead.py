"""Overhead of the observability layer on the predict hot path.

The obs wiring follows one convention everywhere: the instrumented
public entry point reads the installed observer, and when it is the
disabled ``NULL_OBSERVER`` it immediately tail-calls the
uninstrumented ``_impl`` — so the disabled-path cost is exactly one
global read plus one attribute check per call.  This bench prices
that cost on ``PerformanceModel.predict`` (the call the assignment
search makes thousands of times) against ``_predict_impl``, warm
(cache hit) and cold (full Newton solve), and asserts it stays under
5 %.  The enabled-observer cost is reported for context but not
bounded: turning tracing on is an explicit opt-in.
"""

import statistics
import time

from conftest import QUICK, once, report

from repro.analysis.tables import render_table
from repro.core.feature import FeatureVector
from repro.core.performance_model import PerformanceModel
from repro.core.solver_cache import EquilibriumCache
from repro.obs import Observer, use_observer
from repro.workloads.spec import BENCHMARKS

MIX = ["mcf", "art", "gzip", "vpr"]


def _model(ways: int = 16, cached: bool = True) -> PerformanceModel:
    cache = None if cached else EquilibriumCache(max_entries=0)
    model = (
        PerformanceModel(ways=ways)
        if cache is None
        else PerformanceModel(ways=ways, cache=cache)
    )
    model.register_all(
        [FeatureVector.oracle(BENCHMARKS[name], 2e8) for name in MIX]
    )
    return model


def _paired_overhead(fn_a, fn_b, samples: int, calls: int):
    """``(median a/b ratio, best per-call b µs)`` of two closures.

    The two closures run back to back inside each round, so clock
    drift (governor ramps, noisy neighbours) hits both halves of a
    pair about equally and cancels in the per-round ratio; the median
    over rounds then discards rounds where a preemption landed inside
    one half.  Alternating the order each round cancels any fixed
    first-runner bias.  This is far more stable than comparing two
    independently-taken medians on a shared machine.
    """
    ratios, b_times = [], []
    for round_idx in range(samples + 1):
        first, second = (fn_a, fn_b) if round_idx % 2 else (fn_b, fn_a)
        start = time.perf_counter()
        for _ in range(calls):
            first()
        t_first = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(calls):
            second()
        t_second = time.perf_counter() - start
        if round_idx == 0:
            continue  # warm-up round: caches, allocator, governor
        a, b = (t_first, t_second) if round_idx % 2 else (t_second, t_first)
        ratios.append(a / b)
        b_times.append(b)
    return statistics.median(ratios), min(b_times) * 1e6 / calls


def _measure():
    samples = 11 if QUICK else 31

    # Warm path: cache hit, so the wrapper is the largest relative cost.
    warm = _model(cached=True)
    warm.predict(MIX)  # populate the cache
    warm_ratio, warm_base_us = _paired_overhead(
        lambda: warm.predict(MIX),
        lambda: warm._predict_impl(MIX),
        samples,
        calls=60 if QUICK else 200,
    )

    # Cold path: every call runs the full Newton solve.
    cold = _model(cached=False)
    cold_ratio, cold_base_us = _paired_overhead(
        lambda: cold.predict(MIX),
        lambda: cold._predict_impl(MIX),
        samples,
        calls=3 if QUICK else 10,
    )

    # Enabled cost, for context only (tracing is an explicit opt-in).
    observer = Observer()
    with use_observer(observer):
        start = time.perf_counter()
        calls = 60 if QUICK else 200
        for _ in range(calls):
            warm.predict(MIX)
        enabled_us = (time.perf_counter() - start) * 1e6 / calls
    spans = len(observer.tracer.finished)

    return {
        "warm": (warm_ratio, warm_base_us),
        "cold": (cold_ratio, cold_base_us),
        "enabled_us": enabled_us,
        "enabled_spans": spans,
    }


def test_obs_overhead_disabled_under_5pct(benchmark):
    result = once(benchmark, _measure)
    warm_ratio, warm_base = result["warm"]
    cold_ratio, cold_base = result["cold"]
    warm_pct = (warm_ratio - 1.0) * 100.0
    cold_pct = (cold_ratio - 1.0) * 100.0

    lines = [
        render_table(
            ["Path", "_predict_impl() (us)", "Overhead (%)"],
            [
                ("warm (cache hit)", warm_base, warm_pct),
                ("cold (Newton solve)", cold_base, cold_pct),
            ],
            title=f"Observability overhead on predict({'+'.join(MIX)}), "
            "observer disabled",
            float_format="{:.3g}",
        ),
        "",
        f"Enabled observer (warm path): {result['enabled_us']:.1f} us/call, "
        f"{result['enabled_spans']} spans recorded",
    ]
    report("obs_overhead", "\n".join(lines))

    # The ISSUE's acceptance bar: the disabled observability layer
    # costs < 5 % on the predict hot path.  Negative values are timer
    # noise (the wrapper measured *faster* than the impl).
    assert warm_pct < 5.0, f"warm-path overhead {warm_pct:.2f} % >= 5 %"
    assert cold_pct < 5.0, f"cold-path overhead {cold_pct:.2f} % >= 5 %"
