"""Speedup and bit-equality of the repro.parallel batch engine.

Prices three disjoint 32-mix batches serially and through a warm
4-worker :class:`~repro.parallel.ParallelPredictor` pool.  Two things
are pinned:

- **Bit-equality, always.**  The engine's contract is that serial and
  parallel execution return *exactly* the same floats (cold-start
  solves depend only on the co-run, never on solve order), so every
  batch is compared with ``==`` down to the last bit on every machine.
- **Speedup, where it is physically possible.**  On a host with at
  least 4 CPUs the warm pool must price a 32-mix batch at least 2x
  faster than serial.  On smaller hosts (CI runners with 1–2 cores)
  real parallel speedup cannot exist, so the ratio is reported but not
  asserted.

The pool is warmed (workers started, profiles pickled, imports done)
and both paths solve a throwaway batch before anything is timed, so
the measurement is the steady-state batch cost, not pool start-up.
Each timed batch uses mixes neither path has seen, keeping both sides
on the cold full-solve path.  The bisection solver strategy is used
because its per-mix cost (~1.5 ms) is representative of production
batches and large enough that chunk IPC does not dominate.
"""

import itertools
import os
import statistics
import time

from conftest import QUICK, once, report

from repro.analysis.tables import render_table
from repro.core.feature import FeatureVector
from repro.parallel import ParallelPredictor
from repro.workloads.spec import BENCHMARKS, PAPER_EIGHT

WAYS = 16
WORKERS = 4
BATCH = 32
STRATEGY = "bisection"


def _batches():
    """Three disjoint batches (by mix size, so no cross-batch cache hits)."""
    names = list(PAPER_EIGHT)
    size = 8 if QUICK else BATCH
    batches = []
    for mix_size in (5, 4, 6):
        combos = itertools.combinations(names, mix_size)
        batches.append([list(combo) for combo in itertools.islice(combos, size)])
    return batches


def _measure():
    features = [FeatureVector.oracle(BENCHMARKS[n], 2e8) for n in PAPER_EIGHT]
    # Engines are pinned explicitly: this bench prices the process
    # *pool* against a true serial loop, so neither side may be
    # auto-routed onto the vectorized engine by host CPU count.
    serial = ParallelPredictor(
        features, ways=WAYS, strategy=STRATEGY, workers=1, engine="serial"
    )
    parallel = ParallelPredictor(
        features, ways=WAYS, strategy=STRATEGY, workers=WORKERS, engine="pool"
    )
    rows, ratios, mismatches = [], [], 0
    with serial, parallel:
        parallel.warm_up()
        warmup_batch = [[name] for name in PAPER_EIGHT]
        serial.predict_mixes(warmup_batch)
        parallel.predict_mixes(warmup_batch)
        for batch in _batches():
            start = time.perf_counter()
            serial_results = serial.predict_mixes(batch)
            t_serial = time.perf_counter() - start
            start = time.perf_counter()
            parallel_results = parallel.predict_mixes(batch)
            t_parallel = time.perf_counter() - start
            if serial_results != parallel_results:
                mismatches += 1
            ratios.append(t_serial / t_parallel)
            rows.append(
                (len(batch), t_serial * 1e3, t_parallel * 1e3, t_serial / t_parallel)
            )
        merged = parallel.cache_stats
    return {
        "rows": rows,
        "speedup": statistics.median(ratios),
        "mismatches": mismatches,
        "merged_entries": merged.entries,
    }


def test_parallel_predict_speedup_and_equality(benchmark):
    result = once(benchmark, _measure)
    cpus = os.cpu_count() or 1
    lines = [
        render_table(
            ["Mixes", "Serial (ms)", f"{WORKERS} workers (ms)", "Speedup"],
            result["rows"],
            title=f"Batched co-run prediction, warm pool, {cpus} host CPUs",
            float_format="{:.3g}",
        ),
        "",
        f"Median speedup: {result['speedup']:.2f}x; "
        f"{result['merged_entries']} worker solutions merged into the "
        "parent cache",
    ]
    report("parallel_predict", "\n".join(lines))

    assert result["mismatches"] == 0, (
        "serial and parallel batches disagreed bit-for-bit"
    )
    if cpus >= WORKERS and not QUICK:
        assert result["speedup"] >= 2.0, (
            f"median speedup {result['speedup']:.2f}x < 2x at {WORKERS} "
            f"workers on a {cpus}-CPU host"
        )
