"""Throughput of the repro.serve micro-batching front end.

Boots two prediction servers on ephemeral ports, loads both with the
same 32-way-concurrent closed-loop client traffic, and compares:

- **baseline** — ``max_batch_size=1``, serial engine: every request is
  one HTTP round trip and one solo equilibrium solve (what a naive
  one-request-per-call service does).
- **batched** — ``max_batch_size=32`` with a 2 ms linger and a 4-worker
  :class:`~repro.parallel.ParallelPredictor`: concurrent requests
  coalesce into engine-sized batches that amortise dispatch and fan
  out across cores.

Every mix in the work list is a *distinct* multiset, so both servers
run every solve cold (no equilibrium-cache hits flattering either
side).  The two modes pin complementary claims:

- **Full mode** uses the bisection strategy (per-solve cost ~1.5 ms,
  large enough that chunk IPC does not dominate) and, on a host with
  at least 4 CPUs, asserts the batched server clears 3x the baseline
  throughput — the multi-core process-pool win.
- **Quick mode** uses the ``auto`` (Newton) strategy so coalesced
  batches reach the stacked
  :class:`~repro.core.batch_equilibrium.BatchNewtonSolver` through the
  vectorized engine, and asserts batching beats 1-per-call (> 1.0x)
  *even on a single CPU* — the win is vectorized math, not extra
  cores.

Also pinned on every host: zero shed and zero errors — with the
default queue bound the load here must be admitted completely.
"""

import itertools
import os
import sys

from repro.analysis.tables import render_table
from repro.api import ProfileSuiteResult, serve
from repro.core.feature import FeatureVector
from repro.serve import run_load
from repro.workloads.spec import BENCHMARKS, PAPER_EIGHT

WAYS = 16
STRATEGY = "bisection"  # full mode; quick mode uses "auto" (see docstring)
QUICK_STRATEGY = "auto"
CONCURRENCY = 32
REQUESTS = 512
QUICK_REQUESTS = 64


def _suite() -> ProfileSuiteResult:
    return ProfileSuiteResult(
        machine="4-core-server",
        features={
            name: FeatureVector.oracle(BENCHMARKS[name], 2e8)
            for name in PAPER_EIGHT
        },
        profiles={},
    )


def _mixes(count: int):
    """``count`` distinct multisets over the paper's eight benchmarks."""
    names = sorted(PAPER_EIGHT)
    pools = itertools.chain.from_iterable(
        itertools.combinations_with_replacement(names, size)
        for size in (4, 3, 5)
    )
    mixes = [list(combo) for combo in itertools.islice(pools, count)]
    if len(mixes) < count:
        raise RuntimeError(f"only {len(mixes)} distinct mixes available")
    return mixes


def _drive(mixes, strategy, **server_kwargs):
    with serve({"default": _suite()}, strategy=strategy, **server_kwargs) as handle:
        load = run_load(
            handle.host,
            handle.port,
            mixes,
            ways=WAYS,
            concurrency=CONCURRENCY,
        )
        batch_sizes = (
            handle.service.metrics.to_dict()["histograms"]
            .get("serve.batch.size", {})
        )
    return load, batch_sizes


def _measure(quick: bool):
    mixes = _mixes(QUICK_REQUESTS if quick else REQUESTS)
    strategy = QUICK_STRATEGY if quick else STRATEGY
    baseline, _ = _drive(mixes, strategy, workers=1, max_batch_size=1)
    batched, batch_sizes = _drive(
        mixes, strategy, workers=4, max_batch_size=32, max_linger_ms=2.0
    )
    return {
        "requests": len(mixes),
        "baseline": baseline,
        "batched": batched,
        "mean_batch": batch_sizes.get("mean", 0.0),
        "ratio": (
            batched.throughput_rps / baseline.throughput_rps
            if baseline.throughput_rps
            else 0.0
        ),
    }


def _render(result) -> str:
    rows = [
        (
            label,
            load.completed,
            load.shed,
            load.errors,
            load.duration_s * 1e3,
            load.throughput_rps,
            load.latency_quantile(0.5) * 1e3,
            load.latency_quantile(0.95) * 1e3,
        )
        for label, load in (
            ("1-per-call", result["baseline"]),
            ("batched", result["batched"]),
        )
    ]
    cpus = os.cpu_count() or 1
    table = render_table(
        ["Mode", "OK", "Shed", "Err", "Wall (ms)", "req/s",
         "p50 (ms)", "p95 (ms)"],
        rows,
        title=(
            f"/v1/predict, {result['requests']} distinct mixes, "
            f"concurrency {CONCURRENCY}, {cpus} host CPUs"
        ),
        float_format="{:.4g}",
    )
    return "\n".join(
        [
            table,
            "",
            f"Batched/baseline throughput: {result['ratio']:.2f}x; "
            f"mean dispatched batch {result['mean_batch']:.1f} requests",
        ]
    )


def _check(result, quick: bool) -> None:
    cpus = os.cpu_count() or 1
    for label in ("baseline", "batched"):
        load = result[label]
        assert load.errors == 0, f"{label} run hit {load.errors} hard errors"
        assert load.shed == 0, f"{label} run shed {load.shed} requests"
        assert load.completed == result["requests"]
    if quick:
        # Vectorized micro-batching must pay on ANY host, 1 CPU
        # included — that is the whole point of the stacked solver.
        assert result["ratio"] > 1.0, (
            f"batched throughput {result['ratio']:.2f}x baseline on a "
            f"{cpus}-CPU host (vectorized micro-batching must beat "
            "1-per-call even on one core)"
        )
    elif cpus >= 4:
        assert result["ratio"] >= 3.0, (
            f"batched throughput only {result['ratio']:.2f}x baseline "
            f"on a {cpus}-CPU host (need >= 3x)"
        )


def test_serve_throughput(benchmark):
    from conftest import QUICK, once, report

    result = once(benchmark, lambda: _measure(QUICK))
    report("serve_throughput", _render(result))
    _check(result, QUICK)


def main(argv) -> int:
    quick = "--quick" in argv
    result = _measure(quick)
    text = _render(result)
    print(text)
    _check(result, quick)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
