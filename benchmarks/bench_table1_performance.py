"""Table 1: performance-model validation (4-core server).

Paper reference values: average MPA error 1.76 points, average SPI
error 3.38 %, 21.9 % of cases above 5 % SPI error, over 36 pairwise
combinations of 8 SPEC benchmarks.
"""

from conftest import QUICK, once, report

from repro.analysis.validation import pairs_with_replacement
from repro.experiments.table1 import run_pairwise_validation


def test_table1_performance_model(benchmark, server_context):
    pairs = pairs_with_replacement(server_context.benchmark_names)
    if QUICK:
        pairs = pairs[::4]

    result = once(benchmark, lambda: run_pairwise_validation(server_context, pairs=pairs))
    average = result.average
    lines = [result.render()]
    lines.append("")
    lines.append(
        f"Paper: avg MPA err 1.76 pts, avg SPI err 3.38 %, 21.9 % cases > 5 %"
    )
    lines.append(
        f"Ours : avg MPA err {average.mpa_error_pct:.2f} pts, "
        f"avg SPI err {average.spi_error_pct:.2f} %, "
        f"{average.spi_over_5pct:.1f} % cases > 5 %"
    )
    report("table1", "\n".join(lines))

    # Shape assertions: same ballpark as the paper, not exact numbers.
    assert average.spi_error_pct < 8.0
    assert average.mpa_error_pct < 6.0
