"""Scale of heterogeneous assignment with DVFS (``repro.hetero``).

Places a multi-hundred-process workload onto a fleet of big.LITTLE
machines (every core carries a P-state table) and measures, per
solver:

- **greedy** — wall-clock of the seeded one-pass packing, which now
  also chooses a P-state for every core it fills.
- **anneal** — wall-clock of the greedy pack plus simulated-annealing
  refinement whose move set includes P-state flips; its score never
  exceeds greedy's (asserted on every run), and the seeded run is
  bit-reproducible (also asserted, by solving twice).

The bench then re-solves under a power cap set *below* the unconstrained
optimum's draw.  The governor must shed watts through DVFS (or
consolidation) while staying feasible — the capped score can only be
worse than the uncapped one, and the predicted draw must respect the
cap.  Both are exact invariants, asserted on every run.

The exhaustive oracle is unreachable at this size (the P-state choices
multiply the placement space): the bench pins that asking for it raises
:class:`~repro.errors.AssignmentTooLargeError` immediately.
"""

import sys
import time

from repro.analysis.tables import render_table
from repro.api import (
    AssignmentRequest,
    FleetSpec,
    MachineGroup,
    ProfileSuiteResult,
    solve_assignment,
)
from repro.core.feature import FeatureVector, ProfileVector
from repro.core.power_model import CorePowerModel, PowerTrainingSet
from repro.errors import AssignmentTooLargeError
from repro.hetero import big_little_spec
from repro.workloads.spec import BENCHMARKS, PAPER_EIGHT

PROCESSES = 480
QUICK_PROCESSES = 96
ANNEAL_ITERATIONS = 400
QUICK_ANNEAL_ITERATIONS = 120
SEED = 42
MACHINE = "4-core-server"
#: The capped pass asks for this fraction of the unconstrained draw.
CAP_FRACTION = 0.97


def _suite() -> ProfileSuiteResult:
    names = sorted(PAPER_EIGHT)
    return ProfileSuiteResult(
        machine=MACHINE,
        features={
            name: FeatureVector.oracle(BENCHMARKS[name], 2e8) for name in names
        },
        profiles={
            name: ProfileVector(
                name=name,
                p_alone=20.0 + 2.0 * i,
                l1rpi=0.4,
                l2rpi=0.05,
                brpi=0.2,
                fppi=0.01 * i,
            )
            for i, name in enumerate(names)
        },
    )


def _power_model() -> CorePowerModel:
    import numpy as np

    from repro.events import Event, RATE_EVENTS

    rng = np.random.default_rng(0)
    training = PowerTrainingSet()
    for _ in range(40):
        rates = {event: rng.uniform(0, 1e8) for event in RATE_EVENTS}
        power = 11.0 + 8e-8 * rates[Event.L1_REFS] + 2e-7 * rates[Event.L2_MISSES]
        training.add(rates, power)
    return CorePowerModel().fit(training, idle_core_watts=11.0)


def _fleet(process_count: int) -> FleetSpec:
    # One big.LITTLE machine class, sized so every process fits at one
    # per core with a little slack for consolidation moves.
    machines = (process_count + 3) // 4 + 1
    return FleetSpec(
        groups=(
            MachineGroup(
                machine=MACHINE,
                count=machines,
                sets=32,
                hetero=big_little_spec(MACHINE),
            ),
        )
    )


def _pstate_histogram(result):
    counts = {}
    for machine in result.machines:
        if machine.pstates is None:
            continue
        for core, names in machine.assignment.items():
            if not names:
                continue
            level = machine.pstates.get(core, 0)
            counts[level] = counts.get(level, 0) + 1
    return dict(sorted(counts.items()))


def _placed(result) -> int:
    return sum(
        len(core_names)
        for machine in result.machines
        for core_names in machine.assignment.values()
    )


def _measure(quick: bool):
    suite = _suite()
    power_model = _power_model()
    count = QUICK_PROCESSES if quick else PROCESSES
    iterations = QUICK_ANNEAL_ITERATIONS if quick else ANNEAL_ITERATIONS
    names = sorted(PAPER_EIGHT)
    processes = tuple(names[i % len(names)] for i in range(count))
    fleet = _fleet(count)
    loose_budget = fleet.total_machines * 1e6

    def run(solver, budget, **kwargs):
        request = AssignmentRequest(
            processes=processes,
            fleet=fleet,
            solver=solver,
            objective="throughput-under-watts-budget",
            power_budget_watts=budget,
            max_per_core=1,
            seed=SEED,
            **kwargs,
        )
        start = time.perf_counter()
        result = solve_assignment(request, suite, power_model)
        return result, time.perf_counter() - start

    greedy, greedy_s = run("greedy", loose_budget)
    anneal, anneal_s = run("anneal", loose_budget, max_iterations=iterations)
    anneal_again, _ = run("anneal", loose_budget, max_iterations=iterations)

    capped_budget = anneal.predicted_watts * CAP_FRACTION
    capped, capped_s = run("anneal", capped_budget, max_iterations=iterations)

    oracle_error = None
    try:
        run("exhaustive", loose_budget)
    except AssignmentTooLargeError as error:
        oracle_error = error

    return {
        "processes": count,
        "fleet": fleet,
        "iterations": iterations,
        "greedy": greedy,
        "greedy_s": greedy_s,
        "anneal": anneal,
        "anneal_s": anneal_s,
        "anneal_again": anneal_again,
        "capped": capped,
        "capped_s": capped_s,
        "capped_budget": capped_budget,
        "ratio": anneal.score / greedy.score if greedy.score else 1.0,
        "oracle_error": oracle_error,
    }


def _render(result) -> str:
    rows = [
        (
            "greedy",
            result["greedy_s"],
            result["greedy"].score,
            result["greedy"].predicted_watts,
            len(result["greedy"].busy_machines),
            "-",
        ),
        (
            "anneal",
            result["anneal_s"],
            result["anneal"].score,
            result["anneal"].predicted_watts,
            len(result["anneal"].busy_machines),
            f"{result['ratio']:.4f}",
        ),
        (
            "anneal (capped)",
            result["capped_s"],
            result["capped"].score,
            result["capped"].predicted_watts,
            len(result["capped"].busy_machines),
            "-",
        ),
    ]
    fleet = result["fleet"]
    table = render_table(
        ["Solver", "Wall (s)", "Score", "Watts", "Busy machines",
         "Score vs greedy"],
        rows,
        title=(
            f"{result['processes']} processes on "
            f"{fleet.total_machines} big.LITTLE machines "
            f"({fleet.total_cores} cores), "
            f"{result['iterations']} anneal iterations, seed {SEED}"
        ),
        float_format="{:.4g}",
    )
    lines = [
        table,
        "",
        f"Capped pass budget: {result['capped_budget']:.4g} W "
        f"({CAP_FRACTION:.0%} of the unconstrained draw)",
        f"Busy-core P-state histogram, uncapped: "
        f"{_pstate_histogram(result['anneal'])}",
        f"Busy-core P-state histogram, capped:   "
        f"{_pstate_histogram(result['capped'])}",
        f"Exhaustive oracle refused up front: {result['oracle_error']}",
    ]
    return "\n".join(lines)


def _check(result) -> None:
    assert result["anneal"].score <= result["greedy"].score, (
        "annealing returned a worse score than the greedy packing "
        f"({result['anneal'].score} > {result['greedy'].score})"
    )
    assert result["anneal"].score == result["anneal_again"].score, (
        "seeded anneal is not deterministic: "
        f"{result['anneal'].score} != {result['anneal_again'].score}"
    )
    assert result["anneal"].machines == result["anneal_again"].machines, (
        "seeded anneal placements differ between identical runs"
    )
    assert result["capped"].predicted_watts <= result["capped_budget"], (
        "capped solve exceeded its power budget "
        f"({result['capped'].predicted_watts} > {result['capped_budget']})"
    )
    assert result["capped"].score >= result["anneal"].score - 1e-9, (
        "capped solve beat the unconstrained optimum, which is impossible "
        f"({result['capped'].score} < {result['anneal'].score})"
    )
    assert result["oracle_error"] is not None, (
        "exhaustive enumeration at this size must raise "
        "AssignmentTooLargeError instead of hanging"
    )
    for key in ("greedy", "anneal", "capped"):
        assert _placed(result[key]) == result["processes"], (
            f"{key} solve dropped processes"
        )


def test_hetero_assignment_scale(benchmark):
    from conftest import QUICK, once, report

    result = once(benchmark, lambda: _measure(QUICK))
    report("hetero_assignment", _render(result))
    _check(result)


def main(argv) -> int:
    quick = "--quick" in argv
    result = _measure(quick)
    print(_render(result))
    _check(result)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
