"""Throughput and bit-equality of the stacked batch equilibrium solver.

Solves one batch of 256 contended 8-process mixes two ways on a single
core: as 256 scalar ``solve_equilibrium`` calls (the sequential
baseline every earlier layer was built on) and as one
:class:`~repro.core.batch_equilibrium.BatchNewtonSolver` call that
stacks the whole batch into ``(256, 8)`` numpy kernels.  Two things
are pinned:

- **Bit-equality, always.**  The batch solver's contract is that every
  payload field (sizes / mpas / spis / solver / iterations /
  contended) is ``==`` to the scalar loop — checked here on every run,
  on every machine.
- **Speedup ≥ 10x** (full mode; the quick smoke asserts ≥ 5x because
  its batch of 64 amortizes less and its smaller repeat count is
  noisier on shared CI cores).  This is a one-core
  comparison: the win is vectorization, not parallelism, so it holds
  on CI runners where the process pool cannot help.

Both sides are timed with interleaved best-of-N: container schedulers
and frequency scaling routinely double a single measurement, so each
repeat times one scalar pass and one batch pass back-to-back (both
sides see the same machine state) and the minimum over 15 repeats
recovers the true cost of each deterministic computation.
"""

import random
import timeit

from conftest import QUICK, once, report

from repro.analysis.tables import render_table
from repro.core.batch_equilibrium import BatchNewtonSolver
from repro.core.equilibrium import solve_equilibrium
from repro.core.performance_model import PerformanceModel
from repro.core.feature import FeatureVector
from repro.core.solver_cache import EquilibriumCache
from repro.workloads.spec import BENCHMARKS

WAYS = 16
MIX_SIZE = 8
BATCH = 64 if QUICK else 256
REPEAT = 5 if QUICK else 15
FLOOR = 5.0 if QUICK else 10.0


def _build_batch():
    """256 contended 8-of-10 mixes, model-idiom fresh process rows."""
    features = {
        name: FeatureVector.oracle(BENCHMARKS[name], 2e8)
        for name in sorted(BENCHMARKS)
    }
    model = PerformanceModel(
        ways=WAYS, cache=EquilibriumCache(max_entries=0, warm_start=False)
    )
    model.register_all(features.values())
    names = sorted(features)
    rng = random.Random(2010)
    batch = []
    for _ in range(BATCH):
        mix = rng.sample(names, MIX_SIZE)
        batch.append(model._equilibrium_inputs(mix, [1.0] * MIX_SIZE))
    return batch


def _measure():
    batch = _build_batch()
    solver = BatchNewtonSolver()

    def scalar_loop():
        return [solve_equilibrium(row, WAYS) for row in batch]

    def batch_solve():
        return solver.solve_batch(batch, WAYS)

    # Correctness before timing: the whole point is identical bits.
    scalar_results = scalar_loop()
    batch_results = batch_solve()
    mismatches = sum(
        1
        for s, b in zip(scalar_results, batch_results)
        if (s.sizes, s.mpas, s.spis, s.solver, s.iterations, s.contended)
        != (b.sizes, b.mpas, b.spis, b.solver, b.iterations, b.contended)
    )
    scalar_times, batch_times = [], []
    for _ in range(REPEAT):
        scalar_times.append(timeit.timeit(scalar_loop, number=1))
        batch_times.append(timeit.timeit(batch_solve, number=1))
    t_scalar = min(scalar_times)
    t_batch = min(batch_times)
    return {
        "mismatches": mismatches,
        "t_scalar_ms": t_scalar * 1e3,
        "t_batch_ms": t_batch * 1e3,
        "speedup": t_scalar / t_batch,
        "batch_solver_rows": sum(
            1
            for b in batch_results
            if b.telemetry is not None and b.telemetry.solver == "batch_newton"
        ),
    }


def test_batch_solve_speedup_and_equality(benchmark):
    result = once(benchmark, _measure)
    lines = [
        render_table(
            ["Mixes", "k", "Scalar loop (ms)", "Batch solve (ms)", "Speedup"],
            [
                (
                    BATCH,
                    MIX_SIZE,
                    result["t_scalar_ms"],
                    result["t_batch_ms"],
                    result["speedup"],
                )
            ],
            title=f"Stacked batch equilibrium solve, best of {REPEAT}, one core",
            float_format="{:.4g}",
        ),
        "",
        f"{result['batch_solver_rows']}/{BATCH} rows solved on the "
        "vector path (the rest via per-row fallback)",
    ]
    report("batch_solve", "\n".join(lines))

    assert result["mismatches"] == 0, (
        "batch and scalar solves disagreed bit-for-bit"
    )
    assert result["batch_solver_rows"] == BATCH, (
        "contended benchmark mixes should all stay on the vector path"
    )
    assert result["speedup"] >= FLOOR, (
        f"batch-of-{BATCH} speedup {result['speedup']:.2f}x < {FLOOR:.0f}x "
        "over the scalar loop on one core"
    )
