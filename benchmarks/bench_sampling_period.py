"""Ablation: power-model error vs HPC sampling period.

The paper samples at 30 ms (scaled here).  Shorter windows see more
scheduler/measurement noise per sample; run-average accuracy should be
largely period-independent.
"""

from conftest import once, report

from repro.analysis.tables import render_table
from repro.experiments.ablations import run_sampling_period


def test_sampling_period(benchmark, server_context):
    cases = once(
        benchmark,
        lambda: run_sampling_period(
            server_context, periods_s=(0.00125, 0.0025, 0.005)
        ),
    )
    rows = [
        (c.period_s * 1e3, c.windows, c.mean_sample_error_pct, c.avg_power_error_pct)
        for c in cases
    ]
    lines = [
        render_table(
            ["Period (ms)", "Windows", "Sample err (%)", "Avg-power err (%)"],
            rows,
            title="HPC sampling-period ablation",
        ),
        "",
        "Default period (paper's 30 ms, frequency-scaled): 2.5 ms",
    ]
    report("sampling_period", "\n".join(lines))

    for case in cases:
        assert case.avg_power_error_pct < 10.0
