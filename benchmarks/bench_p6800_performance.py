"""§6.2 second machine: 55 combos of 10 benchmarks on the 2-core laptop.

Paper reference value: average SPI estimation error 1.57 %.
"""

from conftest import QUICK, once, report

from repro.analysis.validation import pairs_with_replacement
from repro.experiments.table1 import run_pairwise_validation
import numpy as np


def test_p6800_second_machine(benchmark, laptop_context):
    pairs = pairs_with_replacement(laptop_context.benchmark_names)
    if QUICK:
        pairs = pairs[::6]

    result = once(
        benchmark, lambda: run_pairwise_validation(laptop_context, pairs=pairs)
    )
    spi_errors = [c.spi_error_pct for c in result.cases]
    avg_spi = float(np.mean(spi_errors))
    lines = [result.render(), ""]
    lines.append(f"Pairs evaluated: {len(pairs)} (paper: 55)")
    lines.append("Paper: avg SPI error 1.57 % on the 2-core 12-way machine")
    lines.append(f"Ours : avg SPI error {avg_spi:.2f} %")
    report("p6800_second_machine", "\n".join(lines))

    assert avg_spi < 6.0
