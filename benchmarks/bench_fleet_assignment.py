"""Scale of the fleet-assignment heuristics (``repro.fleet``).

Places a 10k-process workload (1k in quick mode) onto a heterogeneous
fleet large enough to hold it and measures, per solver:

- **greedy** — wall-clock of the seeded one-pass packing, plus how
  much of the work the co-run memo absorbed (machine-state
  evaluations vs pure lookups).
- **anneal** — wall-clock of the greedy pack + simulated-annealing
  refinement under a fixed iteration budget, and the score it reaches
  relative to greedy (the *score ratio*; <= 1.0 means annealing never
  made things worse — an exact invariant of the solver, asserted on
  every run).

The exhaustive oracle is, by construction, unreachable at this size:
the bench also pins that asking for it raises
:class:`~repro.errors.AssignmentTooLargeError` *immediately* instead
of hanging.
"""

import sys
import time

from repro.analysis.tables import render_table
from repro.api import (
    AssignmentRequest,
    FleetSpec,
    MachineGroup,
    ProfileSuiteResult,
    solve_assignment,
)
from repro.core.feature import FeatureVector, ProfileVector
from repro.core.power_model import CorePowerModel, PowerTrainingSet
from repro.errors import AssignmentTooLargeError
from repro.workloads.spec import BENCHMARKS, PAPER_EIGHT

PROCESSES = 10_000
QUICK_PROCESSES = 1_000
ANNEAL_ITERATIONS = 500
QUICK_ANNEAL_ITERATIONS = 100
SEED = 42


def _suite() -> ProfileSuiteResult:
    names = sorted(PAPER_EIGHT)
    return ProfileSuiteResult(
        machine="4-core-server",
        features={
            name: FeatureVector.oracle(BENCHMARKS[name], 2e8) for name in names
        },
        profiles={
            name: ProfileVector(
                name=name,
                p_alone=20.0 + 2.0 * i,
                l1rpi=0.4,
                l2rpi=0.05,
                brpi=0.2,
                fppi=0.01 * i,
            )
            for i, name in enumerate(names)
        },
    )


def _power_model() -> CorePowerModel:
    import numpy as np

    from repro.events import Event, RATE_EVENTS

    rng = np.random.default_rng(0)
    training = PowerTrainingSet()
    for _ in range(40):
        rates = {event: rng.uniform(0, 1e8) for event in RATE_EVENTS}
        power = 11.0 + 8e-8 * rates[Event.L1_REFS] + 2e-7 * rates[Event.L2_MISSES]
        training.add(rates, power)
    return CorePowerModel().fit(training, idle_core_watts=11.0)


def _fleet(process_count: int) -> FleetSpec:
    # Two machine classes, sized so every process fits at one per core.
    servers = (process_count * 3 // 4 + 3) // 4
    workstations = (process_count - process_count * 3 // 4 + 1) // 2
    return FleetSpec(
        groups=(
            MachineGroup(machine="4-core-server", count=max(servers, 1), sets=32),
            MachineGroup(
                machine="2-core-workstation", count=max(workstations, 1), sets=32
            ),
        )
    )


def _measure(quick: bool):
    suite = _suite()
    power_model = _power_model()
    count = QUICK_PROCESSES if quick else PROCESSES
    iterations = QUICK_ANNEAL_ITERATIONS if quick else ANNEAL_ITERATIONS
    names = sorted(PAPER_EIGHT)
    processes = tuple(names[i % len(names)] for i in range(count))
    fleet = _fleet(count)

    def run(solver, **kwargs):
        request = AssignmentRequest(
            processes=processes,
            fleet=fleet,
            solver=solver,
            max_per_core=1,
            seed=SEED,
            **kwargs,
        )
        start = time.perf_counter()
        result = solve_assignment(request, suite, power_model)
        return result, time.perf_counter() - start

    greedy, greedy_s = run("greedy")
    anneal, anneal_s = run("anneal", max_iterations=iterations)

    oracle_error = None
    try:
        run("exhaustive")
    except AssignmentTooLargeError as error:
        oracle_error = error

    return {
        "processes": count,
        "fleet": fleet,
        "iterations": iterations,
        "greedy": greedy,
        "greedy_s": greedy_s,
        "anneal": anneal,
        "anneal_s": anneal_s,
        "ratio": anneal.score / greedy.score if greedy.score else 1.0,
        "oracle_error": oracle_error,
    }


def _render(result) -> str:
    rows = [
        (
            "greedy",
            result["greedy_s"],
            result["greedy"].score,
            result["greedy"].evaluations,
            len(result["greedy"].busy_machines),
            "-",
        ),
        (
            "anneal",
            result["anneal_s"],
            result["anneal"].score,
            result["anneal"].evaluations,
            len(result["anneal"].busy_machines),
            f"{result['ratio']:.4f}",
        ),
    ]
    fleet = result["fleet"]
    table = render_table(
        ["Solver", "Wall (s)", "Score", "Machine evals", "Busy machines",
         "Score vs greedy"],
        rows,
        title=(
            f"{result['processes']} processes on "
            f"{fleet.total_machines} machines ({fleet.total_cores} cores), "
            f"{result['iterations']} anneal iterations, seed {SEED}"
        ),
        float_format="{:.4g}",
    )
    trace = result["anneal"].improvements
    lines = [
        table,
        "",
        f"Anneal best-so-far trace: {len(trace)} improvements, "
        f"first {trace[0]}, last {trace[-1]}",
        f"Exhaustive oracle refused up front: {result['oracle_error']}",
    ]
    return "\n".join(lines)


def _check(result) -> None:
    assert result["anneal"].score <= result["greedy"].score, (
        "annealing returned a worse score than the greedy packing "
        f"({result['anneal'].score} > {result['greedy'].score})"
    )
    assert result["oracle_error"] is not None, (
        "exhaustive enumeration at this size must raise "
        "AssignmentTooLargeError instead of hanging"
    )
    placed = sum(
        len(core_names)
        for machine in result["anneal"].machines
        for core_names in machine.assignment.values()
    )
    assert placed == result["processes"]


def test_fleet_assignment_scale(benchmark):
    from conftest import QUICK, once, report

    result = once(benchmark, lambda: _measure(QUICK))
    report("fleet_assignment", _render(result))
    _check(result)


def main(argv) -> int:
    quick = "--quick" in argv
    result = _measure(quick)
    print(_render(result))
    _check(result)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
