"""Figure 2: estimated vs measured power traces (4-core server).

Paper reference values: the estimated and measured traces overlap for
both the maximum- and minimum-power assignments, with average
estimation errors of 2.46 % and 2.51 % respectively.
"""

from conftest import once, quick_limit, report

from repro.experiments.figure2 import run_figure2


def test_figure2_power_traces(benchmark, server_context):
    result = once(
        benchmark, lambda: run_figure2(server_context, pool=quick_limit(12, 4))
    )
    lines = []
    for panel in (result.maximum, result.minimum):
        lines.append(panel.render())
        lines.append(
            f"{panel.label}: mean measured {panel.mean_measured_watts:.1f} W, "
            f"avg estimation error {panel.avg_error_pct:.2f} %"
        )
        lines.append("")
    lines.append("Paper: avg errors 2.46 % (max-power) and 2.51 % (min-power)")
    report("figure2", "\n".join(lines))

    assert result.maximum.mean_measured_watts > result.minimum.mean_measured_watts
    assert result.maximum.avg_error_pct < 10.0
    assert result.minimum.avg_error_pct < 10.0
