"""Shared setup for the benchmark harness.

Every bench regenerates one paper table/figure at full scale and
prints it in the paper's layout.  Results are also written to
``benchmarks/results/`` so the harness output survives pytest's
capture.

Set ``REPRO_QUICK=1`` to trim assignment counts for a fast smoke run
of the whole harness.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments.context import get_context
from repro.workloads.spec import PAPER_TEN

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Quick mode trims scenario counts (structure identical, less wall time).
QUICK = bool(int(os.environ.get("REPRO_QUICK", "0")))


def quick_limit(full: int, quick: int) -> int:
    return quick if QUICK else full


def report(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def server_context():
    """The 4-core server context shared by Tables 1, 3, 4 and Figure 2.

    Profiles are built once *with* power so the performance benches and
    the combined-model bench share one profiling pass.
    """
    context = get_context(machine="4-core-server", sets=128, seed=42)
    context.profiles(with_power=True)
    return context


@pytest.fixture(scope="session")
def workstation_context():
    """The 2-core E2220 context for Table 2 (power model only)."""
    return get_context(machine="2-core-workstation", sets=128, seed=42)


@pytest.fixture(scope="session")
def laptop_context():
    """The 2-core 12-way machine for the second performance result."""
    return get_context(
        machine="2-core-laptop", sets=128, seed=42, benchmark_names=PAPER_TEN
    )


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
