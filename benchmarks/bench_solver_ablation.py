"""Ablation: Newton-Raphson (the paper's solver) vs nested bisection.

Checks that the two equilibrium solvers agree on the predicted cache
partition, compares their runtime, and times the predict hot path —
analytic vs finite-difference Jacobian, cold vs cached — with the
solver telemetry each result carries.
"""

from conftest import QUICK, once, report

from repro.analysis.tables import render_table
from repro.experiments.ablations import run_predict_hot_path, run_solver_ablation


def test_solver_ablation(benchmark, server_context):
    pairs = None
    if QUICK:
        names = list(server_context.benchmark_names)[:4]
        pairs = [(a, b) for i, a in enumerate(names) for b in names[i:]]

    result = once(benchmark, lambda: run_solver_ablation(server_context, pairs=pairs))
    rows = [
        (
            f"{c.pair[0]}+{c.pair[1]}",
            "yes" if c.newton_converged else "NO",
            c.max_size_disagreement,
            c.newton_seconds * 1e3,
            c.bisection_seconds * 1e3,
            c.newton_telemetry.iterations if c.newton_telemetry else "-",
            (
                f"{c.newton_telemetry.residual_norm:.1e}"
                if c.newton_telemetry
                else c.newton_failure
            ),
        )
        for c in result.cases
    ]
    lines = [
        render_table(
            [
                "Pair",
                "Newton ok",
                "Max |dS| (ways)",
                "Newton (ms)",
                "Bisection (ms)",
                "Iters",
                "Residual",
            ],
            rows,
            title="Equilibrium solver ablation",
        ),
        "",
        f"Newton convergence rate: {result.convergence_rate * 100:.0f} %",
        f"Mean size disagreement:  {result.mean_disagreement:.4f} ways",
        f"Bisection/Newton time:   {result.newton_speedup:.1f}x",
        f"Mean Newton iterations:  {result.mean_newton_iterations:.1f}",
        f"Max residual norm:       {result.max_residual_norm:.2e}",
    ]
    report("solver_ablation", "\n".join(lines))

    assert result.convergence_rate > 0.7
    assert result.mean_disagreement < 0.3


def test_predict_hot_path(benchmark, server_context):
    repeats = 10 if QUICK else 30
    result = once(
        benchmark, lambda: run_predict_hot_path(server_context, repeats=repeats)
    )
    telemetry = result.telemetry
    lines = [
        render_table(
            ["Path", "Median (ms)"],
            [
                ("Newton solve, analytic Jacobian", result.analytic_ms),
                ("Newton solve, FD Jacobian (pre-optimisation)", result.fd_ms),
                ("predict(), cold (cache disabled)", result.predict_ms),
                ("predict(), warm (cache hit)", result.warm_predict_ms),
            ],
            title=f"Predict hot path on {'+'.join(result.mix)}",
        ),
        "",
        f"Analytic/FD Jacobian speedup: {result.jacobian_speedup:.1f}x",
        f"Cache-hit speedup:            {result.cached_speedup:.0f}x "
        f"(hit rate {result.cache_hit_rate * 100:.0f} %)",
        f"Max |analytic - FD| (sizes, SPIs): {result.max_abs_diff:.2e}",
        (
            "Telemetry: "
            f"solver={telemetry.solver} jacobian={telemetry.jacobian} "
            f"iterations={telemetry.iterations} "
            f"residual={telemetry.residual_norm:.2e} "
            f"fallback={telemetry.fallback_reason or 'none'}"
            if telemetry
            else "Telemetry: none"
        ),
    ]
    report("predict_hot_path", "\n".join(lines))

    assert result.contended, "mix must actually contend for the cache"
    # Both Jacobian modes must land on the same equilibrium.
    assert result.max_abs_diff < 1e-6
    # The analytic Jacobian is the optimisation this refactor ships;
    # the FD path is the pre-optimisation algorithm and the floor here
    # is deliberately conservative against CI timer noise (locally the
    # ratio is >3x).
    assert result.jacobian_speedup > 2.0
    assert result.cache_hit_rate > 0.0
