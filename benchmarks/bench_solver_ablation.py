"""Ablation: Newton-Raphson (the paper's solver) vs nested bisection.

Checks that the two equilibrium solvers agree on the predicted cache
partition, and compares their runtime.
"""

from conftest import QUICK, once, report

from repro.analysis.tables import render_table
from repro.experiments.ablations import run_solver_ablation


def test_solver_ablation(benchmark, server_context):
    pairs = None
    if QUICK:
        names = list(server_context.benchmark_names)[:4]
        pairs = [(a, b) for i, a in enumerate(names) for b in names[i:]]

    result = once(benchmark, lambda: run_solver_ablation(server_context, pairs=pairs))
    rows = [
        (
            f"{c.pair[0]}+{c.pair[1]}",
            "yes" if c.newton_converged else "NO",
            c.max_size_disagreement,
            c.newton_seconds * 1e3,
            c.bisection_seconds * 1e3,
        )
        for c in result.cases
    ]
    lines = [
        render_table(
            ["Pair", "Newton ok", "Max |dS| (ways)", "Newton (ms)", "Bisection (ms)"],
            rows,
            title="Equilibrium solver ablation",
        ),
        "",
        f"Newton convergence rate: {result.convergence_rate * 100:.0f} %",
        f"Mean size disagreement:  {result.mean_disagreement:.4f} ways",
        f"Bisection/Newton time:   {result.newton_speedup:.1f}x",
    ]
    report("solver_ablation", "\n".join(lines))

    assert result.convergence_rate > 0.7
    assert result.mean_disagreement < 0.3
