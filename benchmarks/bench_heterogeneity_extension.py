"""Extension: heterogeneous cores (paper contribution claim #4).

On a big.LITTLE-style machine, the fast core out-accesses the slow one
and wins a larger cache share.  The model captures this purely through
the Eq. 3 clock rescale; ignoring the clock difference is much worse.
"""

from conftest import once, report

from repro.analysis.tables import render_table
from repro.experiments.heterogeneity_extension import run_heterogeneity_extension


def test_heterogeneity_extension(benchmark, server_context):
    result = once(benchmark, lambda: run_heterogeneity_extension(server_context))
    rows = []
    for case in result.cases:
        rows.append(
            (
                f"{case.pair[0]}(fast)+{case.pair[1]}(slow)",
                f"{case.measured_occupancies[0]:.2f}/{case.measured_occupancies[1]:.2f}",
                f"{case.predicted_occupancies[0]:.2f}/{case.predicted_occupancies[1]:.2f}",
                case.max_spi_error_pct,
            )
        )
    lines = [
        render_table(
            ["Pair", "Measured occ (ways)", "Predicted occ", "Max SPI err (%)"],
            rows,
            title=f"Heterogeneous cores (slow core at {result.slow_scale:.0%} clock)",
        ),
        "",
        f"Clock-oblivious prediction SPI error: {result.naive_spi_error_pct:.1f} % "
        "(the rescale matters)",
    ]
    report("heterogeneity_extension", "\n".join(lines))

    for case in result.cases:
        assert case.max_spi_error_pct < 8.0
        assert case.max_occupancy_error_ways < 1.0
        # The fast core wins the larger cache share.
        assert case.measured_occupancies[0] > case.measured_occupancies[1]
    assert result.naive_spi_error_pct > 10.0
