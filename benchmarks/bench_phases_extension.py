"""Extension: multi-phase processes (paper §3.1 / Tam et al. step).

The paper prescribes profiling non-repeating phases separately and
used the longest phases of art and mcf.  This bench quantifies why:
on a two-phase workload, whole-run (mixture) profiling vs
longest-phase profiling, judged against the dominant regime's truth.
"""

from conftest import once, report

from repro.analysis.tables import render_table
from repro.experiments.phases_extension import run_phases_extension


def test_phases_extension(benchmark, server_context):
    result = once(benchmark, lambda: run_phases_extension(server_context))
    rows = [
        ("whole-run (mixture) profile", result.naive_spi_error_pct),
        ("longest-phase profile", result.phase_aware_spi_error_pct),
    ]
    lines = [
        render_table(
            ["Profiling strategy", "SPI error vs dominant phase (%)"],
            rows,
            title="Multi-phase extension (partner: " + result.partner + ")",
        ),
        "",
        f"Phase detection on the solo HPC series: {result.detected_phases} "
        f"segments, longest covers {result.longest_phase_share * 100:.0f} % "
        "of the windows",
        "Paper: art/mcf were modeled by their longest phase (Section 3.1/6.1).",
    ]
    report("phases_extension", "\n".join(lines))

    assert result.detected_phases >= 2  # the phases are observable
    assert result.phase_aware_wins
    assert result.phase_aware_spi_error_pct < 5.0


