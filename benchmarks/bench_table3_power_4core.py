"""Table 3: power-model validation on the 4-core server.

Paper reference values:
  1 proc./core (24): samples 4.09/8.52 %, avg power 3.26/7.71 %
  2 proc./core (3):  samples 5.51/6.25 %, avg power 4.47/5.95 %
  4 proc. w/ unused cores (10): samples 3.39/4.73 %, avg 2.54/4.14 %
"""

from conftest import once, quick_limit, report

from repro.experiments.table3 import render_table3, run_table3


def test_table3_power_model_4core(benchmark, server_context):
    scenarios = once(
        benchmark,
        lambda: run_table3(
            server_context,
            limit_1pc=quick_limit(24, 6),
            limit_2pc=quick_limit(3, 2),
            limit_unused=quick_limit(10, 3),
        ),
    )
    lines = [render_table3(scenarios), ""]
    lines.append(
        "Paper: 4.09/8.52 & 3.26/7.71; 5.51/6.25 & 4.47/5.95; 3.39/4.73 & 2.54/4.14"
    )
    report("table3", "\n".join(lines))

    for scenario in scenarios:
        assert scenario.sample_error.mean < 12.0
        assert scenario.avg_error.mean < 9.0
