"""Ablation: profiling sweep density vs prediction accuracy.

The paper's procedure uses all A stressmark runs per process.  This
ablation re-profiles mcf with every 2nd and 4th sweep point and
measures how the downstream co-run SPI error degrades — quantifying
how much of the O(A) profiling cost is actually needed.
"""

from conftest import once, report

from repro.analysis.tables import render_table
from repro.experiments.ablations import run_histogram_resolution


def test_histogram_resolution(benchmark, server_context):
    cases = once(
        benchmark,
        lambda: run_histogram_resolution(
            server_context, name="mcf", partners=("art", "twolf", "gzip")
        ),
    )
    rows = [(c.stride, c.sweep_points, c.mean_spi_error_pct) for c in cases]
    lines = [
        render_table(
            ["Sweep stride", "Points", "Mean SPI error (%)"],
            rows,
            title="Profiling sweep-resolution ablation (mcf)",
        )
    ]
    report("histogram_resolution", "\n".join(lines))

    full = next(c for c in cases if c.stride == 1)
    coarsest = max(cases, key=lambda c: c.stride)
    assert full.mean_spi_error_pct < 10.0
    # Coarser sweeps cannot be dramatically better than the full sweep.
    assert coarsest.mean_spi_error_pct > full.mean_spi_error_pct - 2.0
