"""Extension: model-driven cache partitioning (Xu et al. lineage).

Uses the profiled histograms to pick a throughput-optimal static way
partition, validates Eq. 2 on the partitioned-cache substrate, and
compares total throughput against an even split and shared LRU.
"""

from conftest import once, report

from repro.analysis.tables import render_table
from repro.experiments.partitioning_extension import run_partitioning_extension


def test_partitioning_extension(benchmark, server_context):
    result = once(
        benchmark,
        lambda: run_partitioning_extension(server_context, names=("mcf", "twolf")),
    )
    rows = []
    for label, validated in (("optimal", result.optimal), ("even", result.even)):
        rows.append(
            (
                label,
                str(validated.plan.as_dict()),
                validated.max_mpa_error_pts,
                validated.measured_total_ips,
            )
        )
    rows.append(("shared LRU", "-", float("nan"), result.shared_lru_total_ips))
    lines = [
        render_table(
            ["Plan", "Allocation (ways)", "Max MPA err (pts)", "Total IPS"],
            rows,
            title="Cache-partitioning extension",
            float_format="{:.3g}",
        )
    ]
    report("partitioning_extension", "\n".join(lines))

    # Eq. 2 predicts partitioned miss rates almost exactly.
    assert result.optimal.max_mpa_error_pts < 4.0
    assert result.even.max_mpa_error_pts < 4.0
    # The model-chosen partition is at least as good as the even split.
    assert result.optimal.measured_total_ips >= result.even.measured_total_ips * 0.98
