"""Table 2: power-model validation on the 2-core workstation.

Paper reference values:
  1 proc./core (36 asgn.): samples 5.32/14.12 %, avg power 3.63/13.83 %
  2 proc./core (24 asgn.): samples 6.65/8.84 %,  avg power 2.47/4.05 %
"""

from conftest import once, quick_limit, report

from repro.experiments.table2 import render_table2, run_table2


def test_table2_power_model_2core(benchmark, workstation_context):
    scenarios = once(
        benchmark,
        lambda: run_table2(
            workstation_context,
            limit_1pc=quick_limit(36, 8),
            limit_2pc=quick_limit(24, 4),
        ),
    )
    lines = [render_table2(scenarios), ""]
    lines.append("Paper: 5.32/14.12 & 3.63/13.83 (1pc); 6.65/8.84 & 2.47/4.05 (2pc)")
    report("table2", "\n".join(lines))

    for scenario in scenarios:
        # Same shape as the paper: single-digit average errors, and the
        # run-average error smaller than the per-sample error.
        assert scenario.sample_error.mean < 12.0
        assert scenario.avg_error.mean < 8.0
        assert scenario.avg_error.mean <= scenario.sample_error.mean + 0.5
