"""§3.1 prefetching ablation.

Paper reference values: average speed-up from hardware prefetching
only ~3.25 % across 10 SPEC benchmarks, with only *equake* benefiting
significantly — justifying the model's no-prefetching assumption.
"""

from conftest import QUICK, once, report

from repro.experiments.prefetch_ablation import run_prefetch_ablation
from repro.workloads.spec import PAPER_TEN


def test_prefetch_ablation(benchmark, server_context):
    names = ("gzip", "mcf", "equake", "twolf", "art") if QUICK else PAPER_TEN
    result = once(
        benchmark, lambda: run_prefetch_ablation(server_context, names=names)
    )
    lines = [result.render(), ""]
    lines.append("Paper: average improvement 3.25 %; only equake significant")
    lines.append(
        f"Ours : average improvement {result.average_improvement_pct:.2f} %; "
        f"best = {result.best.name} ({result.best.improvement_pct:.2f} %)"
    )
    report("prefetch_ablation", "\n".join(lines))

    assert result.best.name == "equake"
    assert result.best.improvement_pct > 5.0
    # Everyone else is marginal (the paper's point).
    others = [c for c in result.cases if c.name != "equake"]
    assert all(abs(c.improvement_pct) < 5.0 for c in others)
    assert -2.0 < result.average_improvement_pct < 8.0
